"""Linear-time double-dominator construction (``backend="linear"``).

The paper's original algorithm (and both existing backends) pays, per
search region, one max-flow run per chain *pair* (DOUBLEIDOM) plus one
restricted-graph ``C − v`` dominator computation per chain *element*
(FINDMATCHINGVECTOR) — ``O(chain size × region size)`` in the worst
case.  The authors' follow-up paper ("A Linear-Time Algorithm for
Finding All Double-Vertex Dominators of a Given Vertex", PAPERS.md,
arXiv:1503.04994) shows both are unnecessary: all double-vertex
dominators of the region entry can be read off **one** linear pass over
the region.  This module implements that construction:

1. **Two internally vertex-disjoint entry→sink paths** ``P1``/``P2``
   are found with exactly two augmentation passes over the vertex-split
   region (unit capacity on interior vertices) — ``O(E)``, never more
   augmentations regardless of region connectivity.  Every double
   dominator ``{a, b}`` is a size-two vertex cut, each disjoint path
   must cross it, and a single vertex cannot lie on both paths, so
   ``a`` and ``b`` sit one on each path: the chain's two *sides* are
   subsequences of ``P1`` and ``P2``.
2. **Picard–Queyranne closure analysis** of the residual graph: with a
   flow of two, the size-two cuts are exactly the residual closures
   whose boundary is one saturated split arc per path.  Behind the
   ``k``-th saturated arc of ``P1`` sits the residual strongly
   connected component ``Z_k`` (``Z_0`` holds the entry), and a closure
   can cut ``P1`` at arc ``i`` only if no ``Z_k`` with ``k < i``
   residually reaches ``Z_i`` or beyond.  The needed "highest chain
   index reachable" labels ``z(x)``/``w(x)`` are computed *without*
   condensing components: one multi-source reverse-residual traversal
   per path, seeded from the chain anchors in descending index order,
   labels every node with the highest anchor it reaches — each node is
   visited once, ``O(V + E)`` total.
3. **Prefix maxima + a two-pointer sweep** over the two chains then
   yield, for every cut vertex, the exact *interval* of its partners on
   the opposite path — the matching intervals of Definition 3 — and the
   chain-pair grouping falls out of the interval staircase (a new
   ``{V_1k, V_2k}`` pair starts exactly where consecutive intervals
   stop overlapping).

Everything after the two augmentation passes is plain linear scans, so
one region costs ``O(V + E)`` total — no per-pair flow restarts, no
per-element dominator recomputation.  The output is *bit-identical* to
the other backends (same pair vectors, same intervals, same chain-pair
grouping and side orientation): the pair set determines the chain
layout — sides are ordered along the paths, pairs are the connected
components of the matching relation, and each pair's side 1 is the side
holding the smaller region-local id of its immediate pair, exactly the
ascending-id tie-break of DOUBLEIDOM — which is what lets the
differential oracle compare all three backends vector-for-vector.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ChainConstructionError

#: ``(side1, side2, intervals)`` in region-local ids — the contract of
#: ``repro.core.algorithm._expand_region`` before orig-id mapping.
LocalRegionPair = Tuple[List[int], List[int], Dict[int, Tuple[int, int]]]


class _StampedArray:
    """An int work array validated by a monotone epoch, grown on demand.

    ``begin(n)`` bumps the epoch and guarantees capacity ``n``; entries
    with ``stamp[x] != epoch`` are logically unset (no O(n) clear
    between uses — the same trick as
    :class:`repro.dominators.shared.SharedConeIndex`'s region scratch).
    """

    __slots__ = ("stamp", "value", "epoch")

    def __init__(self) -> None:
        self.stamp: List[int] = []
        self.value: List[int] = []
        self.epoch = 0

    def begin(self, n: int) -> int:
        """Reserve capacity ``n`` and return the fresh epoch."""
        if len(self.stamp) < n:
            grow = max(n, 2 * len(self.stamp)) - len(self.stamp)
            self.stamp.extend([0] * grow)
            self.value.extend([0] * grow)
        self.epoch += 1
        return self.epoch


class LinearScratch:
    """Reusable scratch of :func:`region_chain_pairs` across regions.

    One cone's chain walks dozens to hundreds of search regions; the
    per-region work arrays of the linear construction (BFS parent
    edges, the flow-decomposition resume pointers, the two residual
    reachability labelings) would otherwise be reallocated for every
    region.  A :class:`ChainComputer <repro.core.algorithm.ChainComputer>`
    with ``backend="linear"`` owns one instance and threads it through
    every expansion; the arrays grow to the largest region seen and are
    epoch-validated, so reuse needs no clearing and cannot leak state
    between regions (the property suite asserts chains are bit-identical
    with and without reuse).

    The split-network adjacency itself (``adj``/``eto``/``ecap``) is the
    region's edge data and is still built per region — only the
    O(region) *work* arrays are pooled here.
    """

    __slots__ = ("work", "zlab", "wlab")

    def __init__(self) -> None:
        self.work = _StampedArray()  # BFS parents, then resume pointers
        self.zlab = _StampedArray()  # P1 reachability labels
        self.wlab = _StampedArray()  # P2 reachability labels


def _augment(adj, eto, ecap, source, target, nnodes, work) -> bool:
    """One BFS augmentation over the split residual graph (unit flow)."""
    epoch = work.begin(nnodes)
    stamp = work.stamp
    parent_edge = work.value
    stamp[source] = epoch
    parent_edge[source] = -2
    queue = [source]
    head = 0
    while head < len(queue):
        x = queue[head]
        head += 1
        if x == target:
            break
        for k in adj[x]:
            if ecap[k] > 0:
                y = eto[k]
                if stamp[y] != epoch:
                    stamp[y] = epoch
                    parent_edge[y] = k
                    queue.append(y)
    if stamp[target] != epoch:
        return False
    x = target
    while x != source:
        k = parent_edge[x]
        ecap[k] -= 1
        ecap[k ^ 1] += 1
        x = eto[k ^ 1]
    return True


def _reach_labels(adj, eto, ecap, seeds, nnodes, lab) -> int:
    """Label ``x`` with the highest ``k`` s.t. ``x ⇝ seeds[k]`` residually.

    Seeds are processed in descending index order with one *reverse*
    residual traversal each (following arcs against their residual
    direction reaches exactly the nodes that forward-reach the seed);
    already-labeled nodes stop the walk — they, and everything behind
    them, were claimed by a higher seed — so every node is expanded at
    most once and the whole labeling is ``O(V + E)``.

    Results land in the stamped array ``lab`` (``lab.stamp[x] != epoch``
    means "unreached", the old ``-1``); returns the epoch.
    """
    epoch = lab.begin(nnodes)
    stamp = lab.stamp
    label = lab.value
    for k in range(len(seeds) - 1, -1, -1):
        s = seeds[k]
        if stamp[s] == epoch:
            continue
        stamp[s] = epoch
        label[s] = k
        stack = [s]
        while stack:
            x = stack.pop()
            for e in adj[x]:
                # Arc ``e^1`` runs eto[e] -> x; it is residually usable
                # iff ecap[e^1] > 0, making eto[e] a reverse-neighbor.
                if ecap[e ^ 1] > 0:
                    y = eto[e]
                    if stamp[y] != epoch:
                        stamp[y] = epoch
                        label[y] = k
                        stack.append(y)
    return epoch


def region_chain_pairs(
    region, start: int, scratch: Optional[LinearScratch] = None
) -> List[LocalRegionPair]:
    """All chain pairs of one search region, in chain order.

    Parameters
    ----------
    region:
        The region graph in signal orientation (``succ``/``n``/``root``
        — an :class:`~repro.graph.indexed.IndexedGraph` or
        :class:`~repro.dominators.shared.RegionView`), rooted at the
        region sink.
    start:
        Region-local id of the region entry vertex.
    scratch:
        Optional :class:`LinearScratch` reused across calls (a fresh
        one is created when omitted).  Reuse never changes results —
        only the allocation count.

    Returns
    -------
    list of ``(side1, side2, intervals)``
        One entry per ``{V_1k, V_2k}`` chain pair, in region-local ids
        with pair-local 1-based matching intervals — exactly what the
        legacy/shared expansion produces for the same region.
    """
    if scratch is None:
        scratch = LinearScratch()
    n = region.n
    sink = region.root
    succ = region.succ
    if n < 4:
        # Fewer than two interior vertices: no size-two cut can exist.
        return []

    # ------------------------------------------------------------------
    # vertex-split flow network: in(v) = 2v, out(v) = 2v + 1.  Interior
    # split arcs carry capacity 1; graph arcs capacity 2 (the flow
    # value never exceeds two, so 2 behaves as infinity).  Edge layout:
    # split arcs first — forward arc of v is edge 2v, its reverse 2v+1,
    # so ``adj``/``eto`` for that block are pure index patterns and the
    # whole block is built by two comprehensions instead of 4n appends.
    # ------------------------------------------------------------------
    nnodes = 2 * n
    source = 2 * start + 1  # out(start)
    target = 2 * sink  # in(sink)
    adj: List[List[int]] = [[x] for x in range(nnodes)]
    eto: List[int] = [x ^ 1 for x in range(nnodes)]
    m = nnodes
    narcs = 0
    for v in range(n):
        sv = succ[v]
        narcs += len(sv)
        av = adj[2 * v + 1]
        for w in sv:
            iw = 2 * w
            av.append(m)
            adj[iw].append(m + 1)
            eto.append(iw)
            eto.append(2 * v + 1)
            m += 2
    ecap: List[int] = [1, 0] * n + [2, 0] * narcs

    work = scratch.work
    if not (_augment(adj, eto, ecap, source, target, nnodes, work) and
            _augment(adj, eto, ecap, source, target, nnodes, work)):
        # A single interior vertex (or the start→sink edge alone)
        # already separates entry from sink: no pair can be minimal.
        return []

    # ------------------------------------------------------------------
    # flow decomposition into the two disjoint paths.  Interior
    # vertices are collected in path order; a unit routed over a direct
    # start→sink arc contributes an empty interior.  The flow on a
    # forward arc equals its reverse residual cap, so the walk consumes
    # reverse caps directly and restores them afterwards (the label
    # passes need the untouched residual) — the ``used`` list is only
    # as long as the two paths, no per-edge flow array.
    # ------------------------------------------------------------------
    # Per-node resume pointers, O(E) total — stamped reuse of ``work``
    # (the augmentation epochs above are already stale).
    sp_epoch = work.begin(nnodes)
    sp_stamp = work.stamp
    scan_pos = work.value
    used: List[int] = []
    paths: List[List[int]] = []
    for _ in range(2):
        interior: List[int] = []
        x = source
        while x != target:
            pos = scan_pos[x] if sp_stamp[x] == sp_epoch else 0
            edges = adj[x]
            while True:
                k = edges[pos]
                if not k & 1 and ecap[k + 1] > 0:
                    break
                pos += 1
            sp_stamp[x] = sp_epoch
            scan_pos[x] = pos
            ecap[k + 1] -= 1
            used.append(k)
            y = eto[k]
            if y == target:
                break
            # y is in(v) for an interior vertex v: hop straight to
            # out(v), consuming the split arc's flow unit (arc id y).
            interior.append(y >> 1)
            ecap[y + 1] -= 1
            used.append(y)
            x = y + 1
        paths.append(interior)
    for k in used:
        ecap[k + 1] += 1
    p1, p2 = paths
    if not p1 or not p2:
        # A unit crossed a direct start→sink arc: that arc bypasses
        # every interior vertex, so no pair can cover all paths.
        return []

    # ------------------------------------------------------------------
    # closure reachability labels over the residual graph.  Anchor node
    # of Z_k (the component behind P1's k-th saturated split arc) is
    # out(a_k), with Z_0 anchored at out(start); reaching any node of a
    # component is equivalent to reaching its anchor.
    # ------------------------------------------------------------------
    zseeds = [source] + [2 * a + 1 for a in p1]
    wseeds = [source] + [2 * b + 1 for b in p2]
    z_epoch = _reach_labels(adj, eto, ecap, zseeds, nnodes, scratch.zlab)
    w_epoch = _reach_labels(adj, eto, ecap, wseeds, nnodes, scratch.wlab)

    # ------------------------------------------------------------------
    # prefix maxima along both chains: a_i can appear in a cut iff no
    # component before its split arc reaches back to Z_i or beyond (the
    # closure could not exclude it); the floor is the highest
    # opposite-chain index the prefix drags into any closure cut at a_i
    # — a_i's partners must lie strictly above it.
    # ------------------------------------------------------------------
    def _valid(seeds, interior, own, own_epoch, opp, opp_epoch):
        ostamp, olab = own.stamp, own.value
        pstamp, plab = opp.stamp, opp.value
        out = []  # (chain index, vertex, opposite-chain floor)
        s0 = seeds[0]
        mown = olab[s0] if ostamp[s0] == own_epoch else -1
        mopp = plab[s0] if pstamp[s0] == opp_epoch else -1
        for i in range(1, len(seeds)):
            if mown < i:
                out.append((i, interior[i - 1], mopp))
            s = seeds[i]
            if ostamp[s] == own_epoch and olab[s] > mown:
                mown = olab[s]
            if pstamp[s] == opp_epoch and plab[s] > mopp:
                mopp = plab[s]
        return out

    # P1 / P2 cut candidates.
    valid_a = _valid(zseeds, p1, scratch.zlab, z_epoch, scratch.wlab, w_epoch)
    valid_b = _valid(wseeds, p2, scratch.wlab, w_epoch, scratch.zlab, z_epoch)
    if not valid_a or not valid_b:
        return []

    # ------------------------------------------------------------------
    # matching intervals by two pointers: a_i pairs with b_j iff
    # j > floor(a_i) (the closure at a_i already crossed W below j) and
    # floor(b_j) < i (symmetrically).  Both bounds are monotone, so the
    # partners of consecutive candidates form the Definition-3
    # staircase.
    # ------------------------------------------------------------------
    lo_a: List[int] = []
    hi_a: List[int] = []
    lo = 0
    hi = -1
    for i, _va, floor_w in valid_a:
        while lo < len(valid_b) and valid_b[lo][0] <= floor_w:
            lo += 1
        while hi + 1 < len(valid_b) and valid_b[hi + 1][2] < i:
            hi += 1
        if lo > hi:
            raise ChainConstructionError(
                "linear backend: cut candidate without a partner "
                "(internal invariant violation)"
            )
        lo_a.append(lo)
        hi_a.append(hi)
    if lo_a[0] != 0 or hi_a[-1] != len(valid_b) - 1:
        raise ChainConstructionError(
            "linear backend: opposite-side candidates left unmatched "
            "(internal invariant violation)"
        )

    # Inverse intervals over the candidate lists (two more pointers).
    lo_b = [0] * len(valid_b)
    hi_b = [0] * len(valid_b)
    ka = 0
    for l in range(len(valid_b)):
        while hi_a[ka] < l:
            ka += 1
        lo_b[l] = ka
    ka = len(valid_a) - 1
    for l in range(len(valid_b) - 1, -1, -1):
        while lo_a[ka] > l:
            ka -= 1
        hi_b[l] = ka

    # ------------------------------------------------------------------
    # chain-pair grouping: a new {V_1k, V_2k} starts where the interval
    # staircase breaks (no overlap with the previous candidate).
    # ------------------------------------------------------------------
    results: List[LocalRegionPair] = []
    ka = 0
    while ka < len(valid_a):
        kb = ka
        while kb + 1 < len(valid_a) and lo_a[kb + 1] <= hi_a[kb]:
            kb += 1
        if kb + 1 < len(valid_a) and lo_a[kb + 1] != hi_a[kb] + 1:
            raise ChainConstructionError(
                "linear backend: gap in the matching staircase "
                "(internal invariant violation)"
            )
        la, lb = lo_a[ka], hi_a[kb]
        side_a = [valid_a[k][1] for k in range(ka, kb + 1)]
        side_b = [valid_b[l][1] for l in range(la, lb + 1)]
        intervals: Dict[int, Tuple[int, int]] = {}
        for k in range(ka, kb + 1):
            intervals[valid_a[k][1]] = (
                lo_a[k] - la + 1,
                hi_a[k] - la + 1,
            )
        for l in range(la, lb + 1):
            intervals[valid_b[l][1]] = (
                lo_b[l] - ka + 1,
                hi_b[l] - ka + 1,
            )
        # DOUBLEIDOM's deterministic tie-break: the pair's immediate
        # dominator is reported in ascending region-local id order, and
        # its first element opens side 1.
        if side_a[0] < side_b[0]:
            results.append((side_a, side_b, intervals))
        else:
            results.append((side_b, side_a, intervals))
        ka = kb + 1
    return results


__all__ = ["LinearScratch", "region_chain_pairs"]
