"""Shared dominator-tree backend: one array index per circuit version.

The legacy chain-construction path rebuilds graph state from scratch for
every search region and every restricted graph ``C − v``: each
:func:`~repro.graph.transform.region_between` call allocates two fresh
boolean arrays and a brand-new :class:`~repro.graph.indexed.IndexedGraph`
(adjacency copies, name lists, a dict mapping back to original ids), and
each FINDMATCHINGVECTOR call does the same again via ``remove_vertex``
before running Lengauer–Tarjan on the copy.  Profiling the Table-1 sweep
shows those copies — not the dominator arithmetic — are where the time
goes.

This module replaces the copies with **views over shared arrays**:

* :class:`SharedConeIndex` is built once per ``(graph, version,
  algorithm)`` — cached on the graph itself and invalidated by the
  graph's monotone edit counter — and owns epoch-stamped scratch arrays
  so that extracting a search region is two stack walks over the
  existing adjacency with *zero* per-region allocation proportional to
  the cone;
* :class:`RegionView` is the resulting lightweight region graph — plain
  ``succ``/``pred``/``root`` arrays in region-local ids, duck-compatible
  with ``IndexedGraph`` for every read-only algorithm (max-flow,
  dominators);
* restricted-graph ``C − v`` idom chains never materialize a subgraph at
  all: the exclude-capable algorithms (``lt``, ``dsu``/``snca``) simply
  skip the removed vertex during their DFS, which is equivalent to
  deleting it;
* :class:`SharedCircuitIndex` hoists the netlist→int-id conversion of a
  whole multi-output circuit, so the service sweep extracts each output
  cone from one shared adjacency instead of re-walking the string-keyed
  netlist per output.

Region-local vertex ids are assigned in **ascending original-id order**,
exactly like ``IndexedGraph.subgraph`` — this keeps every downstream
tie-break (the ascending-id ordering of a min-cut pair, the layout of
assembled chains, the member lists stored in ``RegionCache``) identical
between the legacy and shared backends, which is what lets the
differential oracle compare them vector-for-vector.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ChainConstructionError, CircuitError, UnknownNodeError
from ..graph.circuit import Circuit
from ..graph.indexed import IndexedGraph
from . import dsu
from .single import circuit_dominator_tree
from .tree import DominatorTree

#: Valid values of the public ``backend=`` parameter.
#:
#: * ``shared`` — region views over one per-version array index, with
#:   max-flow DOUBLEIDOM and scratch-reusing restricted-idom matching
#:   (this module);
#: * ``legacy`` — the original per-call subgraph copies (reference);
#: * ``linear`` — the follow-up paper's linear-time construction
#:   (:mod:`repro.dominators.linear`): shared region extraction, then
#:   one flow-of-two + residual-SCC pass per region instead of
#:   per-pair max-flow and per-element ``C − v`` idom walks.
BACKENDS = ("shared", "legacy", "linear")


def validate_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {list(BACKENDS)}"
        )
    return backend


class RegionView:
    """A search region as plain arrays in region-local vertex ids.

    Duck-compatible with the read-only surface of
    :class:`~repro.graph.indexed.IndexedGraph` (``n``/``succ``/``pred``/
    ``root``/``names``/``name_of``) — enough for the max-flow split
    network and the dominator algorithms, without carrying the edit
    machinery, tombstones or name index of the full class.
    """

    __slots__ = ("n", "succ", "_pred", "root", "names")

    def __init__(
        self,
        succ: List[List[int]],
        pred: Optional[List[List[int]]] = None,
        root: int = 0,
        names: Optional[List[Optional[str]]] = None,
    ):
        self.n = len(succ)
        self.succ = succ
        self._pred = pred
        self.root = root
        self.names = names if names is not None else [None] * self.n

    @property
    def pred(self) -> List[List[int]]:
        """Reverse adjacency, derived from ``succ`` on first access.

        The shared fast paths (the split flow network, the topological
        matcher) only read ``succ``, so regions usually never pay for
        this.
        """
        if self._pred is None:
            pred: List[List[int]] = [[] for _ in range(self.n)]
            for v, ws in enumerate(self.succ):
                for w in ws:
                    pred[w].append(v)
            self._pred = pred
        return self._pred

    def name_of(self, v: int) -> str:
        name = self.names[v]
        return name if name is not None else f"#{v}"

    def edge_count(self) -> int:
        return sum(len(adj) for adj in self.succ)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegionView(n={self.n}, e={self.edge_count()}, root={self.root})"


def matching_compute(algorithm: str) -> Callable:
    """The exclude-capable ``compute_idoms`` used for ``C − v`` chains.

    Matching vectors only need *some* correct idom computation — idoms
    are unique, so every algorithm returns the same answer — which frees
    the shared backend to always use the fastest exclude-capable
    variant: the SNCA/DSU path-compression algorithm
    (:mod:`repro.dominators.dsu`), about twice as fast as Lengauer–
    Tarjan on region-sized graphs.  The ``algorithm`` parameter still
    selects the cone-level dominator tree; ``backend="legacy"`` honors
    it end-to-end for differential runs.
    """
    del algorithm  # see docstring: shared matching is always SNCA
    return dsu.compute_idoms


def topo_cone_idoms(graph, budget_factor: int = 8) -> Optional[List[int]]:
    """Cone idoms (paper orientation) by one topological sweep.

    Works when vertex ids are a topological order of the cone and every
    vertex reaches the root — the invariants of
    ``IndexedGraph.from_circuit`` — and returns ``None`` whenever either
    is violated (edited graphs, tombstoned vertices), letting the caller
    fall back to a general algorithm.  On a DAG the Cooper–Harvey–
    Kennedy recurrence is exact after a single reverse-topological pass:
    each vertex's idom is the NCA of its successors' already-final
    idoms.  Idoms are unique, so the result equals any other
    algorithm's.

    The sweep's worst case is a deep chain of reconvergent blocks: every
    NCA intersection can walk the whole idom chain below it, and the
    pass degenerates toward O(E·depth) — two minutes at a quarter
    million cascade stages.  The walks are therefore metered against a
    ``budget_factor * edges`` step budget; past it the pass switches to
    the flat-array SNCA of :func:`repro.dominators.dsu.compute_idoms`,
    which is near-linear regardless of depth.
    """
    n = graph.n
    succ = graph.succ
    root = graph.root
    if n == 0 or root != n - 1:
        return None
    # Cheap invariant pre-pass: topological ids + nonempty out-degree
    # below the root together guarantee every vertex reaches the root
    # (induction from high ids down), so the SNCA fallback can start
    # without re-discovering a violation mid-sweep.  ``min(adj) <= v``
    # is one C call per vertex instead of a python loop per edge.
    edges = 0
    for v in range(n - 1):
        adj = succ[v]
        if not adj or min(adj) <= v:
            return None
        edges += len(adj)
    budget = budget_factor * max(edges, 1)
    idom = [0] * n
    idom[root] = root
    for v in range(n - 2, -1, -1):
        a = -1
        for w in succ[v]:
            if a == -1:
                a = w
            elif a != w:
                b = w
                while a != b:
                    if a < b:
                        a = idom[a]
                    else:
                        b = idom[b]
                    budget -= 1
                if budget < 0:
                    # Reversed orientation, exactly as circuit_idoms:
                    # forward reach to the root (verified above) equals
                    # backward reach from it, so no vertex comes back
                    # unreachable and the idoms match the sweep's.
                    return dsu.compute_idoms(
                        n, graph.pred, root, pred=succ
                    )
        idom[v] = a
    return idom


class RegionMatcher:
    """Scratch-reusing FINDMATCHINGVECTOR engine for one search region.

    The pair-expansion loop computes one restricted-graph idom chain per
    chain element — hundreds of calls per region on the Table-1 sweep —
    and each :func:`repro.dominators.dsu.compute_idoms` call allocates
    seven arrays plus the dense idom output that the caller immediately
    re-walks into a short chain.  This class serves the same queries out
    of preallocated epoch-stamped arrays, with two engines:

    * **Topological single pass** (the usual case): when region-local ids
      are a topological order (every edge ascends — guaranteed for
      regions extracted from a ``from_circuit`` cone, whose vertex ids
      are topological), the region is a DAG whose reverse orientation is
      processed root-first in one descending sweep, computing each
      ``idom`` as the nearest common ancestor of the already-final idoms
      of its successors (the Cooper–Harvey–Kennedy recurrence, which
      needs no iteration on acyclic graphs).  No DFS, no semidominators;
      the sweep also stops at ``w_start`` since idoms of
      lower-numbered vertices cannot appear on its chain.
    * **Inlined SNCA fallback**: graphs whose ids are not topological
      (e.g. cones edited in place by the incremental engine) run the
      same semi-NCA computation as :mod:`repro.dominators.dsu` over the
      reused scratch arrays.

    Idoms are unique, so the vectors are identical to what any
    ``compute_idoms(..., exclude=v)`` call would produce, whichever
    engine answers.
    """

    __slots__ = (
        "region",
        "_topo",
        "_epoch",
        "_stamp",
        "_dfn",
        "_vertex",
        "_parent",
        "_semi",
        "_label",
        "_anc",
        "_idom",
        "_iota",
        "_neg",
    )

    def __init__(self, region):
        self.region = region
        n = region.n
        succ = region.succ
        self._topo = region.root == n - 1 and all(
            w > v for v in range(n) for w in succ[v]
        )
        self._epoch = 0
        self._stamp = [0] * n
        self._idom = [0] * n
        if not self._topo:
            self._dfn = [0] * n
            self._vertex = [0] * n
            self._parent = [0] * n
            self._semi = [0] * n
            self._label = [0] * n
            self._anc = [0] * n
            self._iota = list(range(n))
            self._neg = [-1] * n

    def matching_vector(self, excl: int, w_start: int) -> List[int]:
        """Idom chain of ``w_start`` in the region minus ``excl``.

        Returns ``[w_start, idom(w_start), ...]`` up to but excluding the
        region root, in region-local ids — the exact contract of
        :func:`repro.core.matching.find_matching_vector`.
        """
        if not self._topo:
            return self._matching_vector_snca(excl, w_start)
        region = self.region
        succ = region.succ
        root = region.root
        self._epoch += 1
        epoch = self._epoch
        stamp = self._stamp
        idom = self._idom
        stamp[root] = epoch
        idom[root] = root
        # Reverse-orientation topological sweep: descending local ids
        # visit every vertex after all its successors, so each NCA
        # intersection runs over final idom values.  A stamped vertex is
        # one that still reaches the root with ``excl`` removed.
        for v in range(region.n - 2, w_start - 1, -1):
            if v == excl:
                continue
            a = -1
            for w in succ[v]:
                if w == excl or stamp[w] != epoch:
                    continue
                if a == -1:
                    a = w
                elif a != w:
                    b = w
                    while a != b:
                        if a < b:
                            a = idom[a]
                        else:
                            b = idom[b]
            if a != -1:
                stamp[v] = epoch
                idom[v] = a
        if stamp[w_start] != epoch:
            raise ChainConstructionError(
                f"partner {w_start} vanished from the region after "
                f"removing {excl}"
            )
        out: List[int] = []
        x = w_start
        while x != root:
            out.append(x)
            x = idom[x]
        return out

    def _matching_vector_snca(self, excl: int, w_start: int) -> List[int]:
        region = self.region
        succ = region.pred  # dominator orientation: root toward leaves
        pred = region.succ
        root = region.root
        self._epoch += 1
        epoch = self._epoch
        stamp = self._stamp
        dfn = self._dfn
        vertex = self._vertex
        parent = self._parent

        # Genuine DFS preorder (iterator stack, like repro.dominators.dsu)
        # — the semidominator theory needs a real DFS tree, not just any
        # discovery order.
        stamp[root] = epoch
        dfn[root] = 0
        vertex[0] = root
        parent[0] = 0
        count = 1
        iter_stack = [(0, iter(succ[root]))]
        while iter_stack:
            pv, it = iter_stack[-1]
            advanced = False
            for w in it:
                if w != excl and stamp[w] != epoch:
                    stamp[w] = epoch
                    dfn[w] = count
                    vertex[count] = w
                    parent[count] = pv
                    iter_stack.append((count, iter(succ[w])))
                    count += 1
                    advanced = True
                    break
            if not advanced:
                iter_stack.pop()
        if stamp[w_start] != epoch:
            raise ChainConstructionError(
                f"partner {w_start} vanished from the region after "
                f"removing {excl}"
            )

        r = count
        semi = self._semi
        label = self._label
        anc = self._anc
        semi[:r] = self._iota[:r]
        label[:r] = self._iota[:r]
        anc[:r] = self._neg[:r]
        # Semidominators in DFS-number space with inlined one-array
        # path-compression eval (same recurrence as repro.dominators.dsu).
        for i in range(r - 1, 0, -1):
            w = vertex[i]
            best = semi[i]
            for u in pred[w]:
                if stamp[u] != epoch:
                    continue
                pu = dfn[u]
                a = anc[pu]
                if a != -1 and anc[a] != -1:
                    chain = [pu]
                    x = a
                    while anc[anc[x]] != -1:
                        chain.append(x)
                        x = anc[x]
                    for c in reversed(chain):
                        ca = anc[c]
                        la = label[ca]
                        if semi[la] < semi[label[c]]:
                            label[c] = la
                        anc[c] = anc[ca]
                s = semi[label[pu]]
                if s < best:
                    best = s
            semi[i] = best
            anc[i] = parent[i]
        idom = self._idom
        idom[0] = 0
        for i in range(1, r):
            j = parent[i]
            s = semi[i]
            while j > s:
                j = idom[j]
            idom[i] = j

        out: List[int] = []
        x = dfn[w_start]
        while x:
            out.append(vertex[x])
            x = idom[x]
        return out


class SharedConeIndex:
    """Immutable per-version index of one cone, shared across queries.

    Owns the epoch-stamped scratch arrays that make region extraction
    allocation-free: ``_reach``/``_coreach``/``_local`` are ``int`` stamp
    arrays the size of the cone, validated against a monotone epoch
    counter instead of being cleared between regions.
    """

    __slots__ = (
        "graph",
        "version",
        "algorithm",
        "kernels",
        "_tree",
        "_kernel_index",
        "_epoch",
        "_reach",
        "_coreach",
        "_local",
    )

    def __init__(
        self,
        graph: IndexedGraph,
        algorithm: str = "lt",
        kernels: str = "python",
    ):
        from .kernels import require_numpy, validate_kernels

        validate_kernels(kernels)
        if kernels == "numpy":
            require_numpy()
        self.graph = graph
        self.version = graph.version
        self.algorithm = algorithm
        self.kernels = kernels
        self._tree: Optional[DominatorTree] = None
        self._kernel_index = None
        self._epoch = 0
        self._reach = [0] * graph.n
        self._coreach = [0] * graph.n
        self._local = [0] * graph.n

    @classmethod
    def for_graph(
        cls,
        graph: IndexedGraph,
        algorithm: str = "lt",
        kernels: str = "python",
    ) -> "SharedConeIndex":
        """The cached index of ``graph`` at its current version.

        Indexes are cached per ``(algorithm, kernels)`` key, so
        alternating configurations on the same graph version (the
        oracle's cross-checks, interleaved service queries) reuse both
        indexes instead of rebuilding on every switch.  An edit bumps
        ``graph.version`` and drops the whole cache at once.
        """
        cached = graph._shared_index
        if not isinstance(cached, dict) or cached.get("version") != graph.version:
            cached = {"version": graph.version}
            graph._shared_index = cached
        key = (algorithm, kernels)
        index = cached.get(key)
        if index is None:
            index = cls(graph, algorithm, kernels)
            cached[key] = index
        return index

    @property
    def tree(self) -> DominatorTree:
        """Cone dominator tree, computed once per graph version.

        Uses the single-pass topological sweep when the graph's ids are
        topological (idoms are unique, so the tree is identical to what
        ``self.algorithm`` would build); otherwise defers to the
        configured algorithm.  The sweep meters its NCA walks and
        escapes to SNCA on deep chains (same idoms, bounded worst
        case), so both kernels settings share one tree pass.
        """
        if self._tree is None:
            idoms = topo_cone_idoms(self.graph)
            if idoms is not None:
                self._tree = DominatorTree(idoms, self.graph.root)
            else:
                self._tree = circuit_dominator_tree(
                    self.graph, self.algorithm
                )
        return self._tree

    def kernel_index(self):
        """The cone's :class:`~repro.dominators.kernels.KernelConeIndex`.

        Built lazily on the first region wide enough to clear
        ``MIN_KERNEL_REGION`` — a cone whose chain regions are all
        narrow (the common case for deep, skinny circuits) never pays
        for the level sort or the CSR build.
        """
        self._check_fresh()
        if self._kernel_index is None:
            from .kernels import KernelConeIndex

            self._kernel_index = KernelConeIndex(self.graph)
        return self._kernel_index

    def _check_fresh(self) -> None:
        if self.graph.version != self.version:
            raise CircuitError(
                "shared index is stale: the graph was edited after the "
                "index was built (rebuild via SharedConeIndex.for_graph)"
            )

    def extract_region(self, start: int, sink: int):
        """The search region between ``start`` and ``sink`` as a view.

        Returns ``(view, orig_of, local_start)`` where ``view`` is a
        :class:`RegionView` rooted at ``sink`` and ``orig_of`` maps
        ascending region-local ids back to cone ids — the same contract
        (and the same ordering) as ``region_between`` + ``subgraph``.
        """
        self._check_fresh()
        if start == sink:
            # A vertex trivially reaches itself, but a region needs a
            # path of length >= 1 — report this precisely instead of
            # pretending the sink is unreachable.
            raise CircuitError(
                "region start and sink are the same vertex"
            )
        graph = self.graph
        succ, pred = graph.succ, graph.pred
        self._epoch += 1
        epoch = self._epoch
        reach, coreach = self._reach, self._coreach

        # Forward walk pruned at the sink: paths continuing past ``sink``
        # can never return to it (the graph is a DAG), so expanding the
        # sink's successors only visits vertices the coreach pass would
        # discard anyway.  For chain regions — where ``sink`` dominates
        # ``start`` — this skips the entire downstream cone.
        reach[start] = epoch
        stack = [start]
        while stack:
            v = stack.pop()
            for w in succ[v]:
                if reach[w] != epoch:
                    reach[w] = epoch
                    if w != sink:
                        stack.append(w)
        if reach[sink] != epoch:
            raise CircuitError("sink is not reachable from start")

        # Backward walk restricted to reach-marked vertices: any vertex
        # that reaches ``sink`` *through* reach-marked vertices is itself
        # on a start→sink path, and every suffix of such a path is
        # reach-marked, so the restriction loses nothing.
        coreach[sink] = epoch
        members = [sink]
        stack = [sink]
        while stack:
            v = stack.pop()
            for w in pred[v]:
                if reach[w] == epoch and coreach[w] != epoch:
                    coreach[w] = epoch
                    members.append(w)
                    stack.append(w)
        members.sort()

        local = self._local
        for i, v in enumerate(members):
            local[v] = i
        names = graph.names
        succ_local = [
            [local[w] for w in succ[v] if coreach[w] == epoch]
            for v in members
        ]
        view = RegionView(
            succ_local,
            root=local[sink],
            names=[names[v] for v in members],
        )
        return view, members, local[start]


# ----------------------------------------------------------------------
# whole-circuit index (service layer)
# ----------------------------------------------------------------------
_CIRCUIT_INDEXES: "weakref.WeakKeyDictionary[Circuit, SharedCircuitIndex]" = (
    weakref.WeakKeyDictionary()
)


class SharedCircuitIndex:
    """Int-id adjacency of a whole multi-output netlist, built once.

    ``IndexedGraph.from_circuit`` re-walks the string-keyed netlist (one
    topological sort plus dict lookups per fanin) for every output; a
    service sweep over *k* outputs pays that *k* times.  This index pays
    it once and then extracts each output cone with a single backward
    walk over int arrays, producing an ``IndexedGraph`` identical (same
    vertex order, same names) to what ``from_circuit`` would build.
    """

    __slots__ = ("order", "index", "succ", "pred", "_size")

    def __init__(self, circuit: Circuit):
        self.order: List[str] = list(circuit.topological_order())
        self.index: Dict[str, int] = {
            nm: i for i, nm in enumerate(self.order)
        }
        n = len(self.order)
        self.succ: List[List[int]] = [[] for _ in range(n)]
        self.pred: List[List[int]] = [[] for _ in range(n)]
        for nm in self.order:
            i = self.index[nm]
            for driver in circuit.fanins(nm):
                d = self.index[driver]
                self.succ[d].append(i)
                self.pred[i].append(d)
        self._size = len(circuit)

    @classmethod
    def for_circuit(cls, circuit: Circuit) -> "SharedCircuitIndex":
        cached = _CIRCUIT_INDEXES.get(circuit)
        if cached is not None and cached._size == len(circuit):
            return cached
        index = cls(circuit)
        _CIRCUIT_INDEXES[circuit] = index
        return index

    def cone(self, output: str) -> IndexedGraph:
        """The fanin-cone ``IndexedGraph`` of one output."""
        try:
            root = self.index[output]
        except KeyError:
            raise UnknownNodeError(f"no node named {output!r}") from None
        seen = [False] * len(self.order)
        seen[root] = True
        stack = [root]
        while stack:
            v = stack.pop()
            for d in self.pred[v]:
                if not seen[d]:
                    seen[d] = True
                    stack.append(d)
        # Ascending over a topological numbering == topological order,
        # matching IndexedGraph.from_circuit's vertex ordering exactly.
        members = [v for v in range(len(self.order)) if seen[v]]
        local = {v: i for i, v in enumerate(members)}
        succ = [
            [local[w] for w in self.succ[v] if seen[w]] for v in members
        ]
        return IndexedGraph(
            succ,
            root=local[root],
            names=[self.order[v] for v in members],
        )


def cone_graph(circuit: Circuit, output: Optional[str] = None) -> IndexedGraph:
    """Shared-index replacement for ``IndexedGraph.from_circuit``."""
    if output is None:
        outs = circuit.outputs
        if len(outs) != 1:
            raise CircuitError(
                f"circuit {circuit.name!r} has {len(outs)} outputs; "
                "specify which cone to extract"
            )
        output = outs[0]
    return SharedCircuitIndex.for_circuit(circuit).cone(output)


__all__ = [
    "BACKENDS",
    "RegionMatcher",
    "RegionView",
    "SharedCircuitIndex",
    "SharedConeIndex",
    "cone_graph",
    "matching_compute",
    "topo_cone_idoms",
    "validate_backend",
]
