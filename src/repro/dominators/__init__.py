"""Single-vertex dominator algorithms and the dominator tree."""

from . import dsu, iterative, lengauer_tarjan, naive, shared
from .lengauer_tarjan import UNREACHABLE
from .shared import BACKENDS, SharedConeIndex, validate_backend
from .single import (
    circuit_dominator_tree,
    circuit_idoms,
    count_single_pi_dominators,
    idom_chain,
    pi_dominator_vertices,
    single_dominators_of,
)
from .tree import DominatorTree

__all__ = [
    "BACKENDS",
    "DominatorTree",
    "SharedConeIndex",
    "UNREACHABLE",
    "circuit_dominator_tree",
    "circuit_idoms",
    "count_single_pi_dominators",
    "dsu",
    "idom_chain",
    "iterative",
    "lengauer_tarjan",
    "naive",
    "pi_dominator_vertices",
    "shared",
    "single_dominators_of",
    "validate_backend",
]
