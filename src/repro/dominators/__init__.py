"""Single-vertex dominator algorithms and the dominator tree."""

from . import iterative, lengauer_tarjan, naive
from .lengauer_tarjan import UNREACHABLE
from .single import (
    circuit_dominator_tree,
    circuit_idoms,
    count_single_pi_dominators,
    idom_chain,
    pi_dominator_vertices,
    single_dominators_of,
)
from .tree import DominatorTree

__all__ = [
    "DominatorTree",
    "UNREACHABLE",
    "circuit_dominator_tree",
    "circuit_idoms",
    "count_single_pi_dominators",
    "idom_chain",
    "iterative",
    "lengauer_tarjan",
    "naive",
    "pi_dominator_vertices",
    "single_dominators_of",
]
