"""Low-high orders — an O(n + m) certificate for dominator trees.

A *low-high order* of a flow graph ``G`` with dominator tree ``D``
(Georgiadis & Tarjan; maintained incrementally in arXiv:1608.06462) is a
preorder ``delta`` of ``D`` such that every vertex ``v`` other than the
root satisfies one of

* ``(idom(v), v)`` is an edge of ``G``, or
* ``v`` has predecessors ``u`` and ``w`` with
  ``delta(u) < delta(v) < delta(w)`` and ``w`` not a descendant of ``v``
  in ``D``.

The verification theorem makes this a *certificate*: a tree ``D`` that
spans exactly the reachable vertices, has the ancestor property (for
every edge ``(u, v)``, ``u`` descends from ``idom(v)``) and admits a
low-high order **is** the dominator tree — no matter how it was
computed.  :func:`verify_low_high` checks all three in one O(n + m)
pass, so the dynamic engine can prove its incrementally-maintained tree
correct after every batch without re-running a static algorithm.

Orientation: as everywhere in :mod:`repro.dominators`, dominance is in
the paper's sense — on the edge-reversed circuit with the output as
entry.  A *flow* predecessor of ``v`` is therefore ``graph.succ[v]``
(its signal fanouts) and a flow successor is ``graph.pred[v]``.

:func:`compute_low_high` builds a low-high order constructively for
circuit DAGs: children of each tree node are placed in graph topological
order, and a child with no direct parent edge is inserted immediately
after its lowest-placed *derived* predecessor (the sibling subtree
containing one of its flow predecessors).  For a correct dominator tree
of a DAG such a child always has derived predecessors in at least two
sibling subtrees (otherwise that sibling would dominate it), so the
insertion leaves at least one derived predecessor on each side — the
resulting preorder always verifies.  For an *incorrect* tree either the
construction fails (:class:`LowHighError`) or the verifier reports the
violated property.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from typing import Dict, List, Sequence

from ..lengauer_tarjan import UNREACHABLE

__all__ = [
    "LowHighError",
    "compute_low_high",
    "verify_low_high",
    "certify_tree",
]

#: Cap on messages returned by one verification, to keep oracle reports
#: and daemon error payloads bounded on badly corrupted trees.
MAX_VIOLATIONS = 20


class LowHighError(ValueError):
    """The low-high construction found the tree structurally invalid."""


def _tree_children(idom: Sequence[int], root: int, n: int) -> List[List[int]]:
    children: List[List[int]] = [[] for _ in range(n)]
    for v in range(n):
        if v != root and idom[v] != UNREACHABLE:
            parent = idom[v]
            if not 0 <= parent < n or idom[parent] == UNREACHABLE:
                raise LowHighError(
                    f"idom[{v}] = {parent} is not a reachable vertex"
                )
            children[parent].append(v)
    return children


def _preorder_intervals(
    children: List[List[int]], root: int, n: int
) -> "tuple[List[int], List[int]]":
    """DFS entry times and subtree sizes over arbitrary child order."""
    tin = [UNREACHABLE] * n
    size = [1] * n
    order: List[int] = []
    stack = [root]
    clock = 0
    while stack:
        v = stack.pop()
        if tin[v] != UNREACHABLE:
            raise LowHighError(f"vertex {v} appears twice in the tree")
        tin[v] = clock
        clock += 1
        order.append(v)
        stack.extend(reversed(children[v]))
    for v in reversed(order):
        for c in children[v]:
            size[v] += size[c]
    return tin, size


def _flow_topo_order(graph, reachable: Sequence[bool]) -> List[int]:
    """Topological order of the reachable vertices, flow orientation.

    Flow edges run ``u -> v`` for ``u in graph.succ[v]``; the returned
    order lists every reachable flow predecessor before its successors.
    """
    indeg = {}
    for v in range(graph.n):
        if reachable[v]:
            indeg[v] = sum(1 for u in graph.succ[v] if reachable[u])
    queue = deque(v for v, d in indeg.items() if d == 0)
    order: List[int] = []
    while queue:
        v = queue.popleft()
        order.append(v)
        for w in graph.pred[v]:
            if reachable[w]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    queue.append(w)
    if len(order) != len(indeg):
        raise LowHighError("cycle among reachable vertices")
    return order


def compute_low_high(graph, idom: Sequence[int]) -> List[int]:
    """A low-high order of ``idom`` over ``graph``, as a position array.

    Returns ``delta`` with ``delta[v]`` the preorder position of ``v``
    (root at 0) and :data:`UNREACHABLE` for vertices outside the tree.

    Raises :class:`LowHighError` when the tree is structurally unable to
    carry a low-high order (broken parent links, a cycle, or a vertex
    whose predecessors all sit in one sibling subtree — impossible for
    a genuine dominator tree of a DAG).  A successfully returned order
    still needs :func:`verify_low_high` to certify the tree: the
    construction trusts ``idom`` where the verifier does not.
    """
    n = graph.n
    root = graph.root
    if len(idom) != n:
        raise LowHighError(f"idom has length {len(idom)}, graph has {n}")
    if idom[root] != root:
        raise LowHighError(f"idom[root] = {idom[root]}, expected {root}")
    children = _tree_children(idom, root, n)
    tin, size = _preorder_intervals(children, root, n)
    for v in range(n):
        if idom[v] != UNREACHABLE and tin[v] == UNREACHABLE:
            raise LowHighError(
                f"vertex {v}: parent chain does not reach the root "
                "(cycle among tree links)"
            )
    reachable = [tin[v] != UNREACHABLE for v in range(n)]
    topo_pos = {v: i for i, v in enumerate(_flow_topo_order(graph, reachable))}
    for v in range(n):
        if reachable[v] and v not in topo_pos:
            raise LowHighError(
                f"vertex {v} is in the tree but not flow-reachable"
            )

    placed_order: List[List[int]] = [[] for _ in range(n)]
    for p in range(n):
        kids = children[p]
        if not kids:
            continue
        by_tin = sorted(kids, key=lambda c: tin[c])
        tins = [tin[c] for c in by_tin]
        placed = placed_order[p]
        for c in sorted(kids, key=lambda c: topo_pos[c]):
            direct = False
            derived = set()
            for u in graph.succ[c]:  # flow predecessors of c
                if not reachable[u]:
                    continue
                if u == p:
                    direct = True
                    continue
                # The sibling subtree containing u (ancestor property
                # says u descends from p, hence from exactly one child).
                i = bisect_right(tins, tin[u]) - 1
                sib = by_tin[i] if i >= 0 else None
                if sib is None or tin[u] > tin[sib] + size[sib] - 1:
                    raise LowHighError(
                        f"edge ({u}, {c}): predecessor {u} does not "
                        f"descend from idom[{c}] = {p}"
                    )
                if sib == c:
                    raise LowHighError(
                        f"edge ({u}, {c}): predecessor inside the "
                        f"subtree of {c} (cycle through {c})"
                    )
                derived.add(sib)
            if direct:
                placed.append(c)
            elif not placed or len(derived) < 2:
                raise LowHighError(
                    f"vertex {c}: no edge from idom[{c}] = {p} and "
                    f"predecessors in {len(derived)} sibling subtree(s) "
                    "(a dominator tree guarantees two)"
                )
            else:
                # On a corrupted tree a derived sibling can still be
                # unplaced here (topological/dominance invariants broken);
                # report that as a construction failure, not a ValueError.
                unplaced = [s for s in derived if s not in placed]
                if unplaced:
                    raise LowHighError(
                        f"vertex {c}: derived predecessor subtree "
                        f"{unplaced[0]} is not placed before it "
                        "(topological order of siblings violated)"
                    )
                lowest = min(placed.index(s) for s in derived)
                placed.insert(lowest + 1, c)

    delta = [UNREACHABLE] * n
    clock = 0
    stack = [root]
    while stack:
        v = stack.pop()
        delta[v] = clock
        clock += 1
        stack.extend(reversed(placed_order[v]))
    return delta


def verify_low_high(
    graph, idom: Sequence[int], delta: Sequence[int]
) -> List[str]:
    """Certify ``idom`` against ``graph`` using the order ``delta``.

    Returns a list of violation messages — empty means **certified**:
    the tree spans exactly the flow-reachable vertices, has the ancestor
    property and ``delta`` is a low-high order, which together prove
    ``idom`` is the dominator tree (Georgiadis–Tarjan verification
    theorem).  One O(n + m) pass, independent of how the tree or the
    order were produced.
    """
    n = graph.n
    root = graph.root
    violations: List[str] = []

    def report(message: str) -> bool:
        violations.append(message)
        return len(violations) >= MAX_VIOLATIONS

    if len(idom) != n or len(delta) != n:
        return [
            f"array sizes (idom {len(idom)}, order {len(delta)}) "
            f"do not match graph size {n}"
        ]
    if idom[root] != root:
        return [f"idom[root] = {idom[root]}, expected {root}"]
    if delta[root] != 0:
        return [f"order[root] = {delta[root]}, expected 0"]

    # Reachable set: flow successors of v are graph.pred[v].
    seen = [False] * n
    seen[root] = True
    queue = deque([root])
    while queue:
        v = queue.popleft()
        for w in graph.pred[v]:
            if not seen[w]:
                seen[w] = True
                queue.append(w)
    positions = set()
    count = 0
    for v in range(n):
        in_tree = idom[v] != UNREACHABLE
        if in_tree != seen[v]:
            if report(
                f"vertex {v}: {'in tree' if in_tree else 'missing'} but "
                f"{'flow-reachable' if seen[v] else 'unreachable'}"
            ):
                return violations
            continue
        if (delta[v] != UNREACHABLE) != seen[v]:
            if report(f"vertex {v}: order assigned iff reachable violated"):
                return violations
        if seen[v]:
            count += 1
            positions.add(delta[v])
    if positions != set(range(count)):
        return violations + [
            f"order is not a bijection onto 0..{count - 1}"
        ]

    # Parent order: a preorder lists every parent before its children.
    for v in range(n):
        if v == root or not seen[v]:
            continue
        p = idom[v]
        if not seen[p]:
            if report(f"idom[{v}] = {p} is unreachable"):
                return violations
        elif delta[p] >= delta[v]:
            if report(f"order[{p}] >= order[{v}] for child {v} of {p}"):
                return violations
    if violations:
        return violations

    # Subtree contiguity: fold sizes bottom-up in descending order —
    # children always carry larger positions than parents, so each
    # subtree is fully folded before its root is folded upward.  A
    # preorder has every subtree on positions [delta(v), maxd(v)].
    by_delta = sorted(
        (v for v in range(n) if seen[v]), key=lambda v: delta[v]
    )
    size = [1] * n
    maxd = [delta[v] if seen[v] else UNREACHABLE for v in range(n)]
    for v in reversed(by_delta):
        if v != root:
            p = idom[v]
            size[p] += size[v]
            if maxd[v] > maxd[p]:
                maxd[p] = maxd[v]
    for v in by_delta:
        if maxd[v] != delta[v] + size[v] - 1:
            if report(
                f"subtree of {v} is not contiguous in the order "
                f"(positions {delta[v]}..{maxd[v]}, size {size[v]})"
            ):
                return violations
    if violations:
        return violations

    # Ancestor property + low-high condition, one scan of the edges.
    for v in by_delta:
        if v == root:
            continue
        p = idom[v]
        has_parent_edge = False
        has_low = False
        has_high = False
        for u in graph.succ[v]:  # flow predecessors of v
            if not seen[u]:
                continue
            if not (delta[p] <= delta[u] <= maxd[p]):
                if report(
                    f"edge ({u}, {v}): {u} does not descend from "
                    f"idom[{v}] = {p} (ancestor property)"
                ):
                    return violations
            if u == p:
                has_parent_edge = True
            if delta[u] < delta[v]:
                has_low = True
            if delta[u] > maxd[v]:  # above v and not a descendant
                has_high = True
        if not has_parent_edge and not (has_low and has_high):
            if report(
                f"vertex {v}: no parent edge and no low/high "
                "predecessor pair (low-high order violated)"
            ):
                return violations
    return violations


def certify_tree(graph, idom: Sequence[int]) -> List[str]:
    """Build and verify a low-high order for ``idom`` in one call.

    The fourth :mod:`repro.check` oracle: an empty return certifies the
    tree unconditionally; otherwise the messages name the violated
    property (construction failures count as violations too).
    """
    try:
        delta = compute_low_high(graph, idom)
    except LowHighError as exc:
        return [f"low-high construction failed: {exc}"]
    return verify_low_high(graph, idom, delta)
