"""True dynamic dominator maintenance (``engine="dynamic"``).

This package is the incremental engine's alternative to the
patch-or-rebuild heuristic: :class:`DynamicDominators` keeps the
dominator tree of a live cone correct across streamed edits with
depth-based-search insertions and affected-region sweeps (see
:mod:`.maintainer`), and :mod:`.lowhigh` provides the low-high-order
certificate that *proves* the maintained tree correct in O(n + m) —
wired into :mod:`repro.check` as the fourth oracle.

The :data:`ENGINES` registry mirrors
:data:`repro.dominators.shared.BACKENDS`: every entry point that takes
an ``engine=`` argument validates it through :func:`validate_engine`,
so an unknown engine fails identically everywhere (the CLI maps the
``ValueError`` to an exit-2 argparse error).
"""

from __future__ import annotations

from typing import Tuple

from .lowhigh import (
    LowHighError,
    certify_tree,
    compute_low_high,
    verify_low_high,
)
from .maintainer import (
    EDGE_ADD,
    EDGE_REMOVE,
    VERTEX_ADD,
    VERTEX_REMOVE,
    DynamicDominators,
    DynamicStats,
    DynamicTree,
)

#: Registered incremental-engine strategies: ``patch`` is the original
#: dirty-cone idom patch with full-rebuild fallback; ``dynamic`` is the
#: maintained tree of this package.
ENGINES: Tuple[str, ...] = ("patch", "dynamic")


def validate_engine(engine: str) -> str:
    """Return ``engine`` if registered, raise ``ValueError`` otherwise."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; choose from {', '.join(ENGINES)}"
        )
    return engine


__all__ = [
    "ENGINES",
    "validate_engine",
    "DynamicDominators",
    "DynamicStats",
    "DynamicTree",
    "EDGE_ADD",
    "EDGE_REMOVE",
    "VERTEX_ADD",
    "VERTEX_REMOVE",
    "LowHighError",
    "certify_tree",
    "compute_low_high",
    "verify_low_high",
]
