"""Dynamic dominator maintenance for circuit cones.

:class:`DynamicDominators` keeps the immediate-dominator array, tree
depths and child lists of one :class:`~repro.graph.indexed.IndexedGraph`
correct across in-place edits **without** rebuilding from scratch.  It
implements the practical dynamic-dominators recipe of Georgiadis et
al. ("An Experimental Study of Dynamic Dominators", arXiv:1604.02711),
specialised to DAGs in the paper's reversed orientation (flow
predecessors of ``v`` are ``graph.succ[v]``, flow successors are
``graph.pred[v]``, the flow entry is the circuit output):

* **Depth-based insertion search** — a batch that nets out to one
  inserted edge recomputes placements only along the propagation front
  below the edge's flow head: a vertex is re-examined only when a flow
  predecessor is *dirty* (it, or a dominator-tree ancestor of it,
  moved this sweep), and each re-examination is a depth-guided NCA
  fold.  Vertices with only clean predecessors are skipped outright —
  their folds' NCA climbs visit no vertex that moved, so the old
  answer provably stands.  Dirtiness propagates along the maintained
  ``idom`` links, which keeps the pruning sound for deletions too,
  where a vertex can re-parent laterally at unchanged depth.
* **Affected-region recomputation** — any batch (deletions, gate
  kills, multi-edge rewires) recomputes immediate dominators inside the
  *affected region*: the flow-reachable closure of the changed edges'
  heads on the post-batch graph.  Because the region is closed under
  flow successors, a single local topological sweep with NCA folding
  over (final) predecessor dominators is exact — the DAG version of the
  DSU/semi-NCA recompute, with no full-graph pass — and the same
  change-propagation pruning applies.
* **Fallback policy** — only when the affected region exceeds a
  configurable fraction of the live graph does the maintainer fall back
  to one static rebuild (:func:`repro.dominators.dsu.compute_idoms`,
  the DSU algorithm).

Batches are the unit of work: the caller applies edits eagerly to the
graph, queues the edge/vertex deltas, and hands the whole batch over in
one :meth:`apply_batch` — opposite inserts and deletes cancel, and one
region sweep covers everything.  Correctness is *certifiable*: the
companion :mod:`.lowhigh` module verifies the maintained tree with an
O(n + m) low-high order check after any batch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lengauer_tarjan import UNREACHABLE
from ..single import circuit_idoms
from .lowhigh import certify_tree

__all__ = [
    "DynamicDominators",
    "DynamicStats",
    "DynamicTree",
    "EDGE_ADD",
    "EDGE_REMOVE",
    "VERTEX_ADD",
    "VERTEX_REMOVE",
]

#: Delta records, signal orientation: ``(EDGE_ADD, source, target)``
#: mirrors ``graph.add_edge(source, target)``; vertex records carry the
#: vertex index only.
EDGE_ADD = "edge+"
EDGE_REMOVE = "edge-"
VERTEX_ADD = "vertex+"
VERTEX_REMOVE = "vertex-"

Delta = Tuple


@dataclass
class DynamicStats:
    """Counters of one maintainer (exported via engine and daemon stats)."""

    batches: int = 0  # apply_batch calls that had any net change
    dbs_insertions: int = 0  # batches served by depth-based search
    region_updates: int = 0  # batches served by the local region sweep
    fallback_rebuilds: int = 0  # batches that exceeded the region threshold
    certificates: int = 0  # low-high certificate runs
    # Running aggregate of per-batch affected-region sizes — O(1) state,
    # safe for long-lived daemon tenants (the full distribution lives in
    # the ``dynamic.affected_region_size`` metrics histogram).
    region_size_sum: int = 0
    region_size_max: int = 0

    def observe_region(self, size: int) -> None:
        self.region_size_sum += size
        if size > self.region_size_max:
            self.region_size_max = size

    def as_dict(self) -> Dict[str, int]:
        return {
            "dynamic_batches": self.batches,
            "dynamic_dbs_insertions": self.dbs_insertions,
            "dynamic_region_updates": self.region_updates,
            "dynamic_fallback_rebuilds": self.fallback_rebuilds,
            "dynamic_certificates": self.certificates,
            "dynamic_region_size_sum": self.region_size_sum,
            "dynamic_region_size_max": self.region_size_max,
        }


class DynamicTree:
    """Live dominator-tree view over a maintainer's arrays.

    Duck-compatible with the subset of
    :class:`~repro.dominators.tree.DominatorTree` the serving layer uses
    (``idom``/``root``/``n``/``is_reachable``/``chain``/``depth``/
    ``children``/``dominates``) but **mutable**: it reads the
    maintainer's arrays directly, so a flush never pays the O(n) DFS
    that constructing a ``DominatorTree`` does.  Dominance queries climb
    by depth instead of comparing DFS intervals — O(depth), which is
    what the incremental engine's chain walks do anyway.
    """

    __slots__ = ("_m",)

    def __init__(self, maintainer: "DynamicDominators"):
        self._m = maintainer

    @property
    def idom(self) -> List[int]:
        return self._m.idom

    @property
    def root(self) -> int:
        return self._m.graph.root

    @property
    def n(self) -> int:
        return len(self._m.idom)

    def is_reachable(self, v: int) -> bool:
        return self._m.idom[v] != UNREACHABLE

    def depth(self, v: int) -> int:
        self._require(v)
        return self._m.depth[v]

    def children(self, v: int) -> List[int]:
        return sorted(self._m.children[v])

    def chain(self, v: int) -> List[int]:
        self._require(v)
        idom = self._m.idom
        root = self.root
        out = [v]
        while v != root:
            v = idom[v]
            out.append(v)
        return out

    def dominates(self, a: int, b: int) -> bool:
        """True iff ``a`` dominates ``b`` (reflexively)."""
        self._require(a)
        self._require(b)
        idom, depth = self._m.idom, self._m.depth
        while depth[b] > depth[a]:
            b = idom[b]
        return a == b

    def strictly_dominates(self, a: int, b: int) -> bool:
        return a != b and self.dominates(a, b)

    def iter_reachable(self):
        idom = self._m.idom
        return (v for v in range(len(idom)) if v == self.root or idom[v] != UNREACHABLE)

    def _require(self, v: int) -> None:
        if self._m.idom[v] == UNREACHABLE:
            from ...errors import UnreachableVertexError

            raise UnreachableVertexError(
                f"vertex {v} cannot reach the root of this dominator tree"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        reach = sum(1 for d in self._m.idom if d != UNREACHABLE)
        return f"DynamicTree(root={self.root}, reachable={reach}/{self.n})"


class DynamicDominators:
    """Maintains ``idom``/``depth``/``children`` of one cone under edits.

    Parameters
    ----------
    graph:
        The live cone (the maintainer reads it, never mutates it).
    algorithm:
        Static algorithm for the initial build (default the DSU/SNCA
        one — full rebuilds are this maintainer's fallback, so the
        fastest static path is the right default).
    max_region_fraction:
        Fallback threshold: a batch whose affected region exceeds this
        fraction of the live vertex count triggers one static rebuild
        instead of the local sweep.  Small regions are always swept.
    """

    #: Regions at or below this many vertices never trigger the
    #: fractional fallback (tiny graphs would otherwise thrash).
    MIN_REGION = 64

    def __init__(
        self,
        graph,
        algorithm: str = "dsu",
        max_region_fraction: float = 0.75,
    ):
        self.graph = graph
        self.algorithm = algorithm
        self.max_region_fraction = max_region_fraction
        self.stats = DynamicStats()
        self.idom: List[int] = []
        self.depth: List[int] = []
        self.children: List[Set[int]] = []
        self._tree = DynamicTree(self)
        self.rebuild()

    # ------------------------------------------------------------------
    # construction / fallback
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Recompute everything from scratch with the static algorithm."""
        graph = self.graph
        self.idom = circuit_idoms(graph, self.algorithm)
        n = graph.n
        self.depth = [UNREACHABLE] * n
        self.children = [set() for _ in range(n)]
        root = graph.root
        for v, p in enumerate(self.idom):
            if v != root and p != UNREACHABLE:
                self.children[p].add(v)
        self.depth[root] = 0
        queue = deque([root])
        while queue:
            v = queue.popleft()
            d = self.depth[v] + 1
            for c in self.children[v]:
                self.depth[c] = d
                queue.append(c)

    @property
    def tree(self) -> DynamicTree:
        """The live tree view (one object, always current)."""
        return self._tree

    def is_reachable(self, v: int) -> bool:
        return self.idom[v] != UNREACHABLE

    def nca(self, a: int, b: int) -> int:
        """Nearest common ancestor of two reachable vertices, by depth."""
        idom, depth = self.idom, self.depth
        while a != b:
            if depth[a] < depth[b]:
                b = idom[b]
            else:
                a = idom[a]
        return a

    def certificate(self) -> List[str]:
        """Run the low-high certificate; empty list means certified."""
        self.stats.certificates += 1
        return certify_tree(self.graph, self.idom)

    # ------------------------------------------------------------------
    # batched updates
    # ------------------------------------------------------------------
    def apply_batch(self, deltas: Sequence[Delta]) -> Optional[Set[int]]:
        """Fold one batch of already-applied graph deltas into the tree.

        ``deltas`` lists the elementary mutations (:data:`EDGE_ADD` /
        :data:`EDGE_REMOVE` / :data:`VERTEX_ADD` / :data:`VERTEX_REMOVE`
        records, in application order) that turned the previously-seen
        graph into the current ``self.graph``.  Opposite edge records
        cancel before any work happens.

        Returns the affected region — the set of vertices whose
        dominator facts (or root paths) the batch could have changed, a
        sound invalidation cone for region caches — or ``None`` when
        the region exceeded the fallback threshold and a full static
        rebuild was performed instead (callers must then treat every
        vertex as potentially affected).
        """
        graph = self.graph
        n = graph.n
        # New vertices appended by the batch.
        while len(self.idom) < n:
            self.idom.append(UNREACHABLE)
            self.depth.append(UNREACHABLE)
            self.children.append(set())

        net: Dict[Tuple[int, int], int] = {}
        vertex_seeds: Set[int] = set()
        for delta in deltas:
            kind = delta[0]
            if kind == EDGE_ADD:
                key = (delta[1], delta[2])
                net[key] = net.get(key, 0) + 1
            elif kind == EDGE_REMOVE:
                key = (delta[1], delta[2])
                net[key] = net.get(key, 0) - 1
            elif kind in (VERTEX_ADD, VERTEX_REMOVE):
                vertex_seeds.add(delta[1])
            else:  # pragma: no cover - defensive
                raise ValueError(f"unknown delta record {delta!r}")
        added = [edge for edge, count in net.items() if count > 0]
        removed = [edge for edge, count in net.items() if count < 0]
        if not added and not removed and not vertex_seeds:
            return set()
        self.stats.batches += 1

        # Seeds: signal sources of every changed edge plus added/killed
        # vertices.  Any vertex whose root paths changed flow-reaches a
        # seed on the final graph (induction over the first changed edge
        # of a path), so the flow closure of the seeds bounds the
        # affected region.
        seeds = set(vertex_seeds)
        seeds.update(v for v, _ in added)
        seeds.update(v for v, _ in removed)
        region = self._flow_closure(seeds)
        self.stats.observe_region(len(region))

        alive = n - len(graph.dead)
        if len(region) > max(self.MIN_REGION, self.max_region_fraction * alive):
            self.rebuild()
            self.stats.fallback_rebuilds += 1
            return None

        single_insert = not removed and not vertex_seeds and len(added) == 1
        if single_insert and not self.is_reachable(added[0][1]):
            # Flow edge with an unreachable tail: the new edge lies on
            # no root path, so no dominator fact moves anywhere.
            return region
        self._region_update(region, seeds)
        if single_insert:
            self.stats.dbs_insertions += 1
        else:
            self.stats.region_updates += 1
        return region

    # ------------------------------------------------------------------
    def _flow_closure(self, seeds: Set[int]) -> Set[int]:
        """Vertices flow-reachable from ``seeds`` on the current graph.

        Flow successors are signal fanins, so this is the union of the
        seeds' upstream cones — the same direction
        :func:`repro.incremental.idom_update.affected_cone` walks.
        """
        graph = self.graph
        region = set(seeds)
        stack = list(seeds)
        while stack:
            v = stack.pop()
            for w in graph.pred[v]:
                if w not in region:
                    region.add(w)
                    stack.append(w)
        return region

    def _region_update(self, region: Set[int], seeds: Set[int]) -> None:
        """Recompute idoms inside a flow-closed region, one pruned sweep.

        The region contains every vertex whose dominator facts the
        batch may have changed *and* is closed under flow successors,
        so (a) boundary vertices keep their (correct) old idoms and (b)
        a vertex's immediate dominator — the depth-based NCA fold of
        its reachable flow predecessors — only references state that is
        final by the time a local topological sweep reaches it.

        The sweep is *pruned* by ancestor-dirtiness: a vertex is
        re-folded only when its own predecessor list changed (it is a
        seed) or some flow predecessor is *dirty* — it, or any of its
        dominator-tree ancestors, changed its ``(idom, depth)`` pair
        this sweep.  The fold's NCA climbs only ever visit tree
        ancestors of the flow predecessors, so when none of those moved
        the climbs are byte-identical to the pre-batch state and the
        old answer stands.  Dirtiness propagates along the (already
        final) ``idom`` links in the same topological pass, which also
        makes it reach vertices whose parent re-parented *laterally* at
        unchanged depth — a deletion/rewire case where the subtree's
        own ``(idom, depth)`` pairs stay intact while downstream NCA
        folds change (direct-predecessor pruning alone is unsound
        there).  Insertions still touch only the vertices the classic
        depth-based search would.
        """
        graph = self.graph
        idom, depth, children = self.idom, self.depth, self.children
        root = graph.root

        # Local Kahn order, flow orientation (predecessors first).
        indeg = {
            v: sum(1 for u in graph.succ[v] if u in region) for v in region
        }
        queue = deque(v for v, d in indeg.items() if d == 0)
        # dirty[v]: v or a dominator-tree ancestor of v changed placement.
        # Vertices outside the region never change, and no tree ancestor
        # of an outside vertex lies inside the region (the region is
        # flow-closed, ancestors flow-precede their descendants), so a
        # missing key soundly reads as clean.
        dirty: Dict[int, bool] = {}
        processed = 0
        while queue:
            v = queue.popleft()
            processed += 1
            pair_changed = False
            if v != root and (
                v in seeds
                or any(dirty.get(u, False) for u in graph.succ[v])
            ):
                acc: Optional[int] = None
                for u in graph.succ[v]:  # flow predecessors
                    if idom[u] == UNREACHABLE:
                        continue  # unreachable predecessors contribute nothing
                    acc = u if acc is None else self.nca(acc, u)
                old = idom[v]
                old_depth = depth[v]
                new = acc if acc is not None else UNREACHABLE
                if new != old:
                    if old != UNREACHABLE:
                        children[old].discard(v)
                    if new != UNREACHABLE:
                        children[new].add(v)
                    idom[v] = new
                depth[v] = depth[new] + 1 if new != UNREACHABLE else UNREACHABLE
                pair_changed = idom[v] != old or depth[v] != old_depth
            # idom[v] flow-precedes v, so its dirty flag is final here.
            parent = idom[v]
            dirty[v] = pair_changed or (
                v != root
                and parent != UNREACHABLE
                and dirty.get(parent, False)
            )
            for w in graph.pred[v]:  # flow successors
                if w in region:
                    indeg[w] -= 1
                    if indeg[w] == 0:
                        queue.append(w)
        if processed != len(region):  # pragma: no cover - defensive
            raise ValueError("cycle inside the affected region")
