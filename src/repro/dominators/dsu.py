"""SNCA immediate dominators — semi-NCA with DSU path compression.

The "Finding Dominators via Disjoint Set Union" line of work (Fraczak,
Georgiadis, Miller, Tarjan) observes that Lengauer–Tarjan's bucket
machinery is unnecessary in practice: computing true semidominators with
a plain path-compressing disjoint-set forest and then deriving each idom
as ``NCA(parent(w), sdom(w))`` — the semi-NCA recurrence of
Georgiadis–Tarjan — is simpler and usually faster on circuit-sized
graphs, because every array is indexed by DFS number and scanned in
tight monotone loops with no buckets and no final adjustment pass.

Two passes over the DFS preorder:

1. **Semidominators**, in reverse preorder, entirely in DFS-number
   space, using the same one-array path compression as the simple
   Lengauer–Tarjan variant: an unprocessed predecessor (smaller DFS
   number) is a forest root whose semi is still its own number, so the
   uniform update ``semi[i] = min(semi[i], semi[eval(p)])`` covers both
   predecessor cases.
2. **Idoms**, in forward preorder: walk ``idom`` pointers up from
   ``parent(w)`` until the DFS number drops to ``sdom(w)`` or below.
   Earlier vertices' idoms are already final, so the walk is amortized
   near-linear.

Like :func:`repro.dominators.lengauer_tarjan.compute_idoms` the function
is orientation-agnostic and supports the ``exclude`` parameter realizing
the restricted graph ``C − v`` without building a subgraph.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .lengauer_tarjan import UNREACHABLE


def compute_idoms(
    n: int,
    succ: Sequence[Sequence[int]],
    entry: int,
    pred: Optional[Sequence[Sequence[int]]] = None,
    exclude: int = UNREACHABLE,
) -> List[int]:
    """Immediate dominators via semi-NCA with path compression.

    Same contract as the Lengauer–Tarjan sibling: ``idom[entry] ==
    entry``, vertices unreachable from ``entry`` (or equal to
    ``exclude``) get :data:`UNREACHABLE`.
    """
    if pred is None:
        pred_local: List[List[int]] = [[] for _ in range(n)]
        for v in range(n):
            for w in succ[v]:
                pred_local[w].append(v)
        pred = pred_local

    # --- iterative DFS numbering -------------------------------------
    dfn = [UNREACHABLE] * n  # vertex -> dfs number
    vertex: List[int] = [entry]  # dfs number -> vertex
    parent_num: List[int] = [0]  # dfs number -> parent's dfs number
    dfn[entry] = 0
    iter_stack: List[tuple] = [(entry, iter(succ[entry]))]
    while iter_stack:
        v, it = iter_stack[-1]
        advanced = False
        for w in it:
            if dfn[w] == UNREACHABLE and w != exclude:
                dfn[w] = len(vertex)
                parent_num.append(dfn[v])
                vertex.append(w)
                iter_stack.append((w, iter(succ[w])))
                advanced = True
                break
        if not advanced:
            iter_stack.pop()

    reached = len(vertex)
    # Everything below runs in DFS-number space.
    semi = list(range(reached))
    label = list(range(reached))  # min-semi labels for eval
    ancestor = [UNREACHABLE] * reached  # DSU forest parents

    def eval_(i: int) -> int:
        if ancestor[i] == UNREACHABLE:
            return i
        # Path compression: collect the chain up to (but excluding) the
        # forest root, then fold labels top-down.
        chain: List[int] = []
        u = i
        while ancestor[ancestor[u]] != UNREACHABLE:
            chain.append(u)
            u = ancestor[u]
        for w in reversed(chain):
            a = ancestor[w]
            if semi[label[a]] < semi[label[w]]:
                label[w] = label[a]
            ancestor[w] = ancestor[a]
        return label[i]

    for i in range(reached - 1, 0, -1):
        w = vertex[i]
        best = semi[i]
        for v in pred[w]:
            pv = dfn[v]
            if pv == UNREACHABLE:
                continue
            s = semi[eval_(pv)]
            if s < best:
                best = s
        semi[i] = best
        ancestor[i] = parent_num[i]  # LINK(parent, i)

    idom_num = list(parent_num)
    for i in range(1, reached):
        j = idom_num[i]
        s = semi[i]
        while j > s:
            j = idom_num[j]
        idom_num[i] = j

    idom = [UNREACHABLE] * n
    for i in range(1, reached):
        idom[vertex[i]] = vertex[idom_num[i]]
    idom[entry] = entry
    return idom
