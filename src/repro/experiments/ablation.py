"""Ablation studies backing the paper's individual design claims.

Each function isolates one claim from the paper text:

* :func:`scaling_study` — "an order of magnitude faster than [11]" and
  the growth of the gap with circuit size (the too_large/C6288 pattern):
  sweeps a circuit family's size parameter and times both algorithms.
* :func:`lookup_study` — "it takes constant time to look-up whether a
  given pair of vertices is a double-vertex dominator": times the O(1)
  chain lookup against a hashed pair-set and a from-scratch reachability
  check, across circuit sizes.
* :func:`region_cache_study` — cost of recomputing regions per target
  versus sharing them across all primary inputs (the "incremental manner
  during logic synthesis" motivation).
* :func:`single_algorithm_study` — Lengauer–Tarjan versus the iterative
  algorithm as the SINGLEIDOM engine inside the chain construction
  (Section 3's "LT appears to be the fastest" remark).

Run as a module::

    python -m repro.experiments.ablation --study scaling
"""

from __future__ import annotations

import argparse
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..circuits.generators.cascades import cascade
from ..circuits.generators.multipliers import array_multiplier
from ..core.algorithm import ChainComputer
from ..core.baseline import baseline_double_dominators
from ..core.bruteforce import is_double_dominator
from ..graph.circuit import Circuit
from ..graph.indexed import IndexedGraph
from .reporting import format_table

_FAMILIES: Dict[str, Callable[[int], Circuit]] = {
    "cascade": lambda n: cascade(depth=n, num_inputs=8, num_outputs=2),
    "multiplier": lambda n: array_multiplier(n),
}


def _time_both(circuit: Circuit) -> Dict[str, float]:
    cones = [IndexedGraph.from_circuit(circuit, o) for o in circuit.outputs]
    start = time.perf_counter()
    for g in cones:
        baseline_double_dominators(g)
    t1 = time.perf_counter() - start
    start = time.perf_counter()
    for g in cones:
        computer = ChainComputer(g)
        for u in g.sources():
            computer.chain(u)
    t2 = time.perf_counter() - start
    return {"t1": t1, "t2": t2}


def scaling_study(
    family: str = "cascade", sizes: Optional[Sequence[int]] = None
) -> List[Dict[str, object]]:
    """Baseline vs new algorithm across a size sweep of one family."""
    build = _FAMILIES[family]
    if sizes is None:
        sizes = (20, 40, 80, 160) if family == "cascade" else (4, 6, 8, 10)
    rows: List[Dict[str, object]] = []
    for n in sizes:
        circuit = build(n)
        times = _time_both(circuit)
        rows.append(
            {
                "size": n,
                "gates": circuit.gate_count(),
                "t1": times["t1"],
                "t2": times["t2"],
                "improvement": times["t1"] / max(times["t2"], 1e-9),
            }
        )
    return rows


def lookup_study(
    family: str = "cascade",
    sizes: Optional[Sequence[int]] = None,
    queries: int = 2000,
) -> List[Dict[str, object]]:
    """O(1) chain lookup vs hashed pair set vs reachability re-check."""
    import random

    build = _FAMILIES[family]
    if sizes is None:
        sizes = (20, 40, 80, 160) if family == "cascade" else (4, 6, 8)
    rows: List[Dict[str, object]] = []
    for n in sizes:
        circuit = build(n)
        graph = IndexedGraph.from_circuit(circuit, circuit.outputs[0])
        u = graph.sources()[0]
        chain = ChainComputer(graph).chain(u)
        pair_set = chain.pair_set()
        rng = random.Random(42)
        candidates = [
            (rng.randrange(graph.n), rng.randrange(graph.n))
            for _ in range(queries)
        ]
        start = time.perf_counter()
        hits_chain = sum(chain.dominates(a, b) for a, b in candidates)
        t_chain = time.perf_counter() - start
        start = time.perf_counter()
        hits_set = sum(frozenset((a, b)) in pair_set for a, b in candidates)
        t_set = time.perf_counter() - start
        start = time.perf_counter()
        hits_path = sum(
            is_double_dominator(graph, u, a, b) for a, b in candidates
        )
        t_path = time.perf_counter() - start
        assert hits_chain == hits_set == hits_path
        rows.append(
            {
                "size": n,
                "vertices": graph.n,
                "chain_us": 1e6 * t_chain / queries,
                "set_us": 1e6 * t_set / queries,
                "recheck_us": 1e6 * t_path / queries,
            }
        )
    return rows


def region_cache_study(
    family: str = "cascade", sizes: Optional[Sequence[int]] = None
) -> List[Dict[str, object]]:
    """All-PI chain computation with and without region sharing."""
    build = _FAMILIES[family]
    if sizes is None:
        sizes = (20, 40, 80) if family == "cascade" else (4, 6, 8)
    rows: List[Dict[str, object]] = []
    for n in sizes:
        circuit = build(n)
        graph = IndexedGraph.from_circuit(circuit, circuit.outputs[0])
        timings = {}
        for cached in (True, False):
            start = time.perf_counter()
            computer = ChainComputer(graph, cache_regions=cached)
            for u in graph.sources():
                computer.chain(u)
            timings[cached] = time.perf_counter() - start
        rows.append(
            {
                "size": n,
                "cached_s": timings[True],
                "uncached_s": timings[False],
                "speedup": timings[False] / max(timings[True], 1e-9),
            }
        )
    return rows


def single_algorithm_study(
    family: str = "cascade", size: int = 60
) -> List[Dict[str, object]]:
    """LT vs iterative vs naive as the inner single-dominator engine."""
    circuit = _FAMILIES[family](size)
    graph = IndexedGraph.from_circuit(circuit, circuit.outputs[0])
    rows: List[Dict[str, object]] = []
    for algorithm in ("lt", "iterative", "naive"):
        start = time.perf_counter()
        computer = ChainComputer(graph, algorithm=algorithm)
        total = sum(
            computer.chain(u).num_dominators() for u in graph.sources()
        )
        elapsed = time.perf_counter() - start
        rows.append(
            {"engine": algorithm, "pairs": total, "seconds": elapsed}
        )
    assert len({r["pairs"] for r in rows}) == 1
    return rows


_STUDIES = {
    "scaling": scaling_study,
    "lookup": lookup_study,
    "cache": region_cache_study,
    "engine": single_algorithm_study,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Run one ablation study")
    parser.add_argument("--study", choices=sorted(_STUDIES), default="scaling")
    parser.add_argument(
        "--family", choices=sorted(_FAMILIES), default="cascade"
    )
    args = parser.parse_args(argv)
    rows = _STUDIES[args.study](family=args.family)
    headers = list(rows[0].keys())
    print(
        format_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            title=f"ablation: {args.study} ({args.family})",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
