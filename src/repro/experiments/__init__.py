"""Experiment harness regenerating the paper's evaluation."""

from .ablation import (
    lookup_study,
    region_cache_study,
    scaling_study,
    single_algorithm_study,
)
from .reporting import format_markdown_table, format_table
from .table1 import (
    Table1Row,
    format_results,
    measure_circuit,
    run_entry,
    run_table1,
)

__all__ = [
    "Table1Row",
    "lookup_study",
    "region_cache_study",
    "scaling_study",
    "single_algorithm_study",
    "format_markdown_table",
    "format_results",
    "format_table",
    "measure_circuit",
    "run_entry",
    "run_table1",
]
