"""Regenerate the paper's Table 1.

For every suite benchmark the harness measures, per output cone and summed
over cones exactly as the paper specifies:

* Column 4 — distinct vertices singly dominating ≥ 1 primary input
  (Lengauer–Tarjan, as in the paper),
* Column 5 — distinct double-vertex dominator pairs dominating ≥ 1
  primary input (identical for both algorithms — cross-checked),
* t1 — wall time of the baseline algorithm [11],
* t2 — wall time of the paper's dominator-chain algorithm,
* improvement t1/t2,
* wall — total wall-clock spent on the circuit (build + both
  algorithms + cross-checks), the serving-capacity view.

Absolute times are Python-on-today's-hardware, not 2005-C-on-a-650 MHz
Pentium 3; the claims under reproduction are the *ratios* and the counts'
structure.  Run as a module::

    python -m repro.experiments.table1 --scale 0.5
    python -m repro.experiments.table1 --quick --markdown out.md
    python -m repro.experiments.table1 --jobs 4 --seed 1

``--jobs N`` routes t2 through the :mod:`repro.service` worker pool
(cones fan out across N processes); ``--seed K`` offsets the
random-family suite generators to probe robustness across netlist
samples.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set

from ..core.algorithm import ChainComputer
from ..core.baseline import baseline_double_dominators
from ..dominators.single import (
    circuit_dominator_tree,
    pi_dominator_vertices,
)
from ..graph.circuit import Circuit
from ..graph.indexed import IndexedGraph
from ..circuits.suite import QUICK_SUBSET, SuiteEntry, table1_suite
from .reporting import format_markdown_table, format_table


@dataclass
class Table1Row:
    """Measured row plus the paper's published counterpart."""

    name: str
    inputs: int
    outputs: int
    single_doms: int
    double_doms: int
    t1: float
    t2: float
    paper_single: int
    paper_double: int
    paper_improvement: float
    wall: float = 0.0

    @property
    def improvement(self) -> float:
        return self.t1 / self.t2 if self.t2 > 0 else float("inf")


def measure_circuit(
    circuit: Circuit,
    check: bool = False,
    jobs: int = 1,
    backend: str = "shared",
) -> Table1Row:
    """Run both algorithms over every output cone of one circuit.

    With ``check=True`` the per-target pair sets of the two algorithms are
    compared (slow paths already measured; comparison itself is free) and
    a mismatch raises — the harness doubles as an end-to-end test.

    With ``jobs > 1`` the t2 measurement fans cones across a
    :class:`repro.service.ParallelExecutor` worker pool; the reported t2
    is the parallel wall time and the pair sets are reconstructed from
    the workers' serialized chains (bit-identical to the in-process
    path).
    """
    wall_start = time.perf_counter()
    cones = [IndexedGraph.from_circuit(circuit, out) for out in circuit.outputs]

    # Column 4: single-vertex dominators of >= 1 PI (LT), and cone prep.
    singles = 0
    for graph in cones:
        tree = circuit_dominator_tree(graph)
        singles += len(pi_dominator_vertices(tree, graph.sources()))

    # t1: baseline [11].
    t_start = time.perf_counter()
    baseline_pairs: List[Dict[int, Set[FrozenSet[int]]]] = []
    doubles_baseline = 0
    for graph in cones:
        per_target = baseline_double_dominators(graph)
        union: Set[FrozenSet[int]] = set()
        for pairs in per_target.values():
            union |= pairs
        doubles_baseline += len(union)
        baseline_pairs.append(per_target)
    t1 = time.perf_counter() - t_start

    # t2: the paper's algorithm — in-process, or fanned across a pool.
    chain_pair_sets: List[Dict[int, Set[FrozenSet[int]]]] = []
    doubles_new = 0
    if jobs > 1:
        from ..core.chain import DominatorChain
        from ..service import ExecutorConfig, ParallelExecutor

        executor = ParallelExecutor(
            ExecutorConfig(jobs=jobs, backend=backend)
        )
        t_start = time.perf_counter()
        cone_results = executor.sweep_circuit(circuit)
        t2 = time.perf_counter() - t_start
        for graph, result in zip(cones, cone_results):
            union = set()
            per_target = {}
            for name, chain_dict in result.chains.items():
                pairs = DominatorChain.from_dict(chain_dict).pair_set()
                per_target[graph.index_of(name)] = pairs
                union |= pairs
            doubles_new += len(union)
            chain_pair_sets.append(per_target)
    else:
        t_start = time.perf_counter()
        for graph in cones:
            computer = ChainComputer(graph, backend=backend)
            union = set()
            per_target = {}
            for u in graph.sources():
                pairs = computer.chain(u).pair_set()
                per_target[u] = pairs
                union |= pairs
            doubles_new += len(union)
            chain_pair_sets.append(per_target)
        t2 = time.perf_counter() - t_start

    if doubles_new != doubles_baseline:
        raise AssertionError(
            f"{circuit.name}: algorithms disagree on the pair count "
            f"({doubles_new} vs {doubles_baseline})"
        )
    if check:
        for per_new, per_base in zip(chain_pair_sets, baseline_pairs):
            for u, pairs in per_new.items():
                if pairs != per_base.get(u, set()):
                    raise AssertionError(
                        f"{circuit.name}: pair sets differ for target {u}"
                    )

    return Table1Row(
        name=circuit.name,
        inputs=len(circuit.inputs),
        outputs=len(circuit.outputs),
        single_doms=singles,
        double_doms=doubles_new,
        t1=t1,
        t2=t2,
        paper_single=0,
        paper_double=0,
        paper_improvement=0.0,
        wall=time.perf_counter() - wall_start,
    )


def run_entry(
    entry: SuiteEntry,
    scale: float = 1.0,
    check: bool = False,
    jobs: int = 1,
    backend: str = "shared",
) -> Table1Row:
    """Measure one suite benchmark and attach the paper's numbers."""
    row = measure_circuit(
        entry.circuit(scale), check=check, jobs=jobs, backend=backend
    )
    row.paper_single = entry.paper.single_doms
    row.paper_double = entry.paper.double_doms
    row.paper_improvement = entry.paper.improvement
    return row


def run_table1(
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    check: bool = False,
    verbose: bool = True,
    jobs: int = 1,
    seed: Optional[int] = None,
    backend: str = "shared",
) -> List[Table1Row]:
    """Measure a set of suite benchmarks (all 30 by default).

    ``seed`` offsets the random-family suite generators (see
    :func:`repro.circuits.suite.set_seed_offset`); it is restored
    afterwards so the harness has no lasting global effect.
    """
    from ..circuits.suite import seed_offset, set_seed_offset

    suite = table1_suite()
    selected = list(names) if names else list(suite)
    rows: List[Table1Row] = []
    previous_offset = seed_offset()
    if seed is not None:
        set_seed_offset(seed)
    try:
        for name in selected:
            if verbose:
                print(f"  running {name} ...", file=sys.stderr, flush=True)
            rows.append(
                run_entry(
                    suite[name],
                    scale=scale,
                    check=check,
                    jobs=jobs,
                    backend=backend,
                )
            )
    finally:
        set_seed_offset(previous_offset)
    return rows


_HEADERS = [
    "name",
    "in",
    "out",
    "N single",
    "N double",
    "t1 [s]",
    "t2 [s]",
    "impr t1/t2",
    "paper impr",
    "wall [s]",
]


def _table_rows(rows: Sequence[Table1Row]) -> List[List[object]]:
    body: List[List[object]] = [
        [
            r.name,
            r.inputs,
            r.outputs,
            r.single_doms,
            r.double_doms,
            r.t1,
            r.t2,
            r.improvement,
            r.paper_improvement,
            r.wall,
        ]
        for r in rows
    ]
    if rows:
        n = len(rows)
        body.append(
            [
                "average",
                round(sum(r.inputs for r in rows) / n),
                round(sum(r.outputs for r in rows) / n),
                round(sum(r.single_doms for r in rows) / n),
                round(sum(r.double_doms for r in rows) / n),
                sum(r.t1 for r in rows) / n,
                sum(r.t2 for r in rows) / n,
                sum(r.improvement for r in rows) / n,
                sum(r.paper_improvement for r in rows) / n,
                sum(r.wall for r in rows) / n,
            ]
        )
    return body


def format_results(rows: Sequence[Table1Row], markdown: bool = False) -> str:
    """Render measured rows in the paper's Table-1 layout."""
    body = _table_rows(rows)
    if markdown:
        return format_markdown_table(_HEADERS, body)
    return format_table(
        _HEADERS, body, title="Table 1 (reproduced; see EXPERIMENTS.md)"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's Table 1 on the synthetic suite"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="circuit size multiplier (1.0 = paper-matched I/O counts)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="run the 8-circuit quick subset"
    )
    parser.add_argument(
        "--names", nargs="*", help="explicit benchmark names to run"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="cross-check per-target pair sets of the two algorithms",
    )
    parser.add_argument(
        "--markdown", metavar="FILE", help="also write a markdown table"
    )
    from ..cli import backend_arg, jobs_arg
    from ..dominators.shared import BACKENDS

    parser.add_argument(
        "--jobs",
        type=jobs_arg,
        default=1,
        help="worker processes for the t2 measurement (1 = in-process)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed offset for the random-family suite circuits",
    )

    parser.add_argument(
        "--backend",
        default="shared",
        type=backend_arg,
        metavar="{%s}" % ",".join(BACKENDS),
        help="chain-construction backend for the t2 measurement",
    )
    args = parser.parse_args(argv)

    names = args.names or (QUICK_SUBSET if args.quick else None)
    rows = run_table1(
        names=names,
        scale=args.scale,
        check=args.check,
        jobs=args.jobs,
        seed=args.seed,
        backend=args.backend,
    )
    print(format_results(rows))
    if args.markdown:
        with open(args.markdown, "w") as handle:
            handle.write(format_results(rows, markdown=True) + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
