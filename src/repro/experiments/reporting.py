"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table (numbers right-aligned)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    out: List[str] = []
    if title:
        out.append(title)
    sep = "-+-".join("-" * w for w in widths)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(
            " | ".join(
                c.rjust(w) if _numeric(c) else c.ljust(w)
                for c, w in zip(row, widths)
            )
        )
    return "\n".join(out)


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        out.append("| " + " | ".join(_fmt(c) for c in row) + " |")
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        if value >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def _numeric(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False
