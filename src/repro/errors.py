"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause,
while still being able to discriminate structural problems (bad netlists)
from algorithmic invariant violations (which would indicate a bug either in
the input or in the implementation of the paper's algorithm).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class CircuitError(ReproError):
    """A circuit netlist is structurally invalid (cycle, dangling net, ...)."""


class DuplicateNodeError(CircuitError):
    """An attempt was made to define a node name twice."""


class UnknownNodeError(CircuitError, KeyError):
    """A referenced node name does not exist in the circuit."""


class NotADagError(CircuitError):
    """The netlist contains a combinational cycle."""


class ParseError(ReproError):
    """A netlist file could not be parsed."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


class DominatorError(ReproError):
    """A dominator computation was invoked on an unsupported input."""


class UnreachableVertexError(DominatorError):
    """A queried vertex cannot reach the root of its circuit graph."""


class ChainConstructionError(ReproError):
    """An invariant of Definition 3 (dominator chain) was violated.

    Raised when the incremental chain construction observes a state the
    paper's theory rules out; this indicates either a malformed input graph
    (e.g. not single-output) or an implementation bug, never a legal input.
    """


class FlowError(ReproError):
    """A max-flow computation was set up inconsistently."""
