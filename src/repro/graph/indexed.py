"""Integer-indexed DAG view used by all dominator / flow algorithms.

The :class:`~repro.graph.circuit.Circuit` netlist is convenient for
construction and I/O but slow to traverse (string keys).  Every algorithm in
:mod:`repro.dominators`, :mod:`repro.flow` and :mod:`repro.core` instead
operates on an :class:`IndexedGraph`: vertices are ``0..n-1``, adjacency is
plain ``list[list[int]]`` in **signal direction** (``succ[v]`` are the
vertices *v* drives, i.e. the direction of "paths from u to root" in the
paper), and a single designated ``root`` vertex is the circuit output.

Single-output graphs are obtained from multi-output circuits through
:meth:`IndexedGraph.cone`, which extracts the transitive fanin cone of one
primary output — exactly how the paper treats "every output as a separate
function" in its evaluation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import CircuitError, UnknownNodeError
from .circuit import Circuit


class IndexedGraph:
    """A single-root DAG over integer vertices.

    Attributes
    ----------
    n:
        Number of vertices.
    succ:
        ``succ[v]`` — vertices driven by *v* (edges toward the root).
    pred:
        ``pred[v]`` — fanins of *v*.
    root:
        The designated output vertex; every vertex of a well-formed cone
        can reach ``root`` along ``succ`` edges.
    names:
        Optional vertex names (``None`` entries allowed for synthetic
        vertices such as the fake super-source of Section 4).
    """

    __slots__ = (
        "n",
        "succ",
        "pred",
        "root",
        "names",
        "dead",
        "version",
        "_name_index",
        "_shared_index",
    )

    def __init__(
        self,
        succ: Sequence[Sequence[int]],
        root: int,
        names: Optional[Sequence[Optional[str]]] = None,
    ):
        self.n = len(succ)
        if not (0 <= root < self.n):
            raise CircuitError(f"root {root} out of range for n={self.n}")
        self.succ: List[List[int]] = [list(adj) for adj in succ]
        self.pred: List[List[int]] = [[] for _ in range(self.n)]
        for v, adj in enumerate(self.succ):
            for w in adj:
                if not (0 <= w < self.n):
                    raise CircuitError(f"edge {v}->{w} out of range")
                self.pred[w].append(v)
        self.root = root
        if names is not None and len(names) != self.n:
            raise CircuitError("names length must equal vertex count")
        self.names: List[Optional[str]] = (
            list(names) if names is not None else [None] * self.n
        )
        #: Tombstoned vertices (see :meth:`kill_vertex`).  Indices are
        #: never reused, so edits keep every live vertex's index stable.
        self.dead: set = set()
        #: Monotone edit counter: every in-place mutation bumps it, so
        #: derived structures (the shared dominator index, on-disk
        #: artifacts) can cheaply detect staleness without hashing.
        self.version = 0
        self._name_index: Optional[Dict[str, int]] = None
        #: Cache slot for :class:`repro.dominators.shared.SharedConeIndex`
        #: — ``(version, algorithm) -> index``; managed by that module.
        self._shared_index: Optional[dict] = None

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def index_of(self, name: str) -> int:
        """Vertex index of a named node."""
        try:
            return self._ensure_name_index()[name]
        except KeyError:
            raise UnknownNodeError(f"no vertex named {name!r}") from None

    def name_of(self, v: int) -> str:
        """Name of vertex *v* (falls back to ``#<v>`` for unnamed)."""
        name = self.names[v]
        return name if name is not None else f"#{v}"

    def edge_count(self) -> int:
        return sum(len(adj) for adj in self.succ)

    def sources(self) -> List[int]:
        """Vertices with no fanin (primary inputs of the cone)."""
        return [
            v
            for v in range(self.n)
            if not self.pred[v] and v not in self.dead
        ]

    # ------------------------------------------------------------------
    # construction from circuits
    # ------------------------------------------------------------------
    @classmethod
    def from_circuit(
        cls, circuit: Circuit, output: Optional[str] = None
    ) -> "IndexedGraph":
        """Build the cone of one output of ``circuit``.

        Parameters
        ----------
        circuit:
            Source netlist; must be a valid DAG.
        output:
            Output name whose transitive fanin cone to extract.  If omitted
            the circuit must have exactly one primary output.
        """
        if output is None:
            outs = circuit.outputs
            if len(outs) != 1:
                raise CircuitError(
                    f"circuit {circuit.name!r} has {len(outs)} outputs; "
                    "specify which cone to extract"
                )
            output = outs[0]
        if output not in circuit:
            raise UnknownNodeError(f"no node named {output!r}")

        # Collect the transitive fanin cone of the chosen output.
        cone_names: List[str] = []
        seen = {output}
        stack = [output]
        while stack:
            name = stack.pop()
            cone_names.append(name)
            for driver in circuit.fanins(name):
                if driver not in seen:
                    seen.add(driver)
                    stack.append(driver)

        order = [nm for nm in circuit.topological_order() if nm in seen]
        index = {nm: i for i, nm in enumerate(order)}
        succ: List[List[int]] = [[] for _ in order]
        for nm in order:
            for driver in circuit.fanins(nm):
                succ[index[driver]].append(index[nm])
        return cls(succ, root=index[output], names=order)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def reachable_from(self, start: int, exclude: Optional[int] = None) -> List[bool]:
        """Vertices reachable from ``start`` along ``succ`` edges.

        ``start`` itself is marked reachable.  If ``exclude`` is given,
        paths may not pass through that vertex (it is never marked and
        never expanded) — this realizes the paper's restriction ``C - v``.
        """
        mark = [False] * self.n
        if start == exclude:
            return mark
        mark[start] = True
        stack = [start]
        while stack:
            v = stack.pop()
            for w in self.succ[v]:
                if not mark[w] and w != exclude:
                    mark[w] = True
                    stack.append(w)
        return mark

    def coreachable_to(self, target: int, exclude: Optional[int] = None) -> List[bool]:
        """Vertices that can reach ``target`` along ``succ`` edges."""
        mark = [False] * self.n
        if target == exclude:
            return mark
        mark[target] = True
        stack = [target]
        while stack:
            v = stack.pop()
            for w in self.pred[v]:
                if not mark[w] and w != exclude:
                    mark[w] = True
                    stack.append(w)
        return mark

    def topological_order(self) -> List[int]:
        """Vertices in an order where every edge goes forward."""
        indeg = [len(self.pred[v]) for v in range(self.n)]
        ready = [v for v in range(self.n) if indeg[v] == 0]
        order: List[int] = []
        while ready:
            v = ready.pop()
            order.append(v)
            for w in self.succ[v]:
                indeg[w] -= 1
                if indeg[w] == 0:
                    ready.append(w)
        if len(order) != self.n:
            raise CircuitError("graph is not acyclic")
        return order

    # ------------------------------------------------------------------
    # in-place editing (incremental-engine substrate)
    # ------------------------------------------------------------------
    # All edits preserve the indices of untouched vertices: new vertices
    # take fresh indices at the end, removed vertices become tombstones
    # (``dead``) with no incident edges.  That stability is what lets a
    # cross-edit region cache keyed by vertex index survive edits
    # (:mod:`repro.incremental`) without any re-indexing pass.

    def is_alive(self, v: int) -> bool:
        """True while *v* exists (has not been :meth:`kill_vertex`-ed)."""
        return 0 <= v < self.n and v not in self.dead

    def _require_alive(self, v: int) -> None:
        if not (0 <= v < self.n):
            raise CircuitError(f"vertex {v} out of range for n={self.n}")
        if v in self.dead:
            raise CircuitError(f"vertex {v} has been removed")

    def add_vertex(self, name: Optional[str] = None) -> int:
        """Append an isolated vertex; returns its (fresh) index.

        The vertex starts with no edges — it joins the cone once
        :meth:`add_edge` connects it toward the root.
        """
        if name is not None:
            index = self._ensure_name_index()
            if name in index:
                raise CircuitError(f"a vertex named {name!r} already exists")
        v = self.n
        self.n += 1
        self.version += 1
        self.succ.append([])
        self.pred.append([])
        self.names.append(name)
        if name is not None and self._name_index is not None:
            self._name_index[name] = v
        return v

    def add_edge(self, v: int, w: int) -> None:
        """Insert the edge ``v -> w`` (signal direction), keeping the DAG.

        Parallel edges are allowed (a gate may list the same driver
        twice, e.g. ``NAND(x, x)`` as an inverter).  Raises
        :class:`CircuitError` if the edge would close a cycle.
        """
        self._require_alive(v)
        self._require_alive(w)
        if v == w or self.reachable_from(w)[v]:
            raise CircuitError(
                f"edge {v}->{w} would create a cycle"
            )
        self.succ[v].append(w)
        self.pred[w].append(v)
        self.version += 1

    def remove_edge(self, v: int, w: int) -> None:
        """Remove one occurrence of the edge ``v -> w``."""
        self._require_alive(v)
        self._require_alive(w)
        try:
            self.succ[v].remove(w)
            self.pred[w].remove(v)
        except ValueError:
            raise CircuitError(f"no edge {v}->{w} to remove") from None
        self.version += 1

    def set_fanins(self, v: int, fanins: Sequence[int]) -> List[int]:
        """Replace the fanin list of *v* (a rewire edit).

        Returns the structurally touched vertices: *v* plus the old and
        new fanins.  Raises :class:`CircuitError` if any new fanin is
        reachable from *v* (cycle) or is dead.
        """
        self._require_alive(v)
        new = list(fanins)
        for p in new:
            self._require_alive(p)
        reach = self.reachable_from(v)
        for p in new:
            if reach[p]:
                raise CircuitError(
                    f"fanin {p} of {v} is in {v}'s fanout cone (cycle)"
                )
        old = list(self.pred[v])
        for p in old:
            self.succ[p].remove(v)
        self.pred[v] = new
        for p in new:
            self.succ[p].append(v)
        self.version += 1
        return [v] + old + new

    def kill_vertex(self, v: int) -> List[int]:
        """Tombstone *v*: drop it and every incident edge.

        The index is never reused; the vertex simply stops participating
        in traversals (and loses its name, freeing it for re-use).
        Returns the structurally touched vertices: *v* plus its former
        neighbours.  The root cannot be removed.
        """
        self._require_alive(v)
        if v == self.root:
            raise CircuitError("cannot remove the root vertex")
        touched = [v] + self.pred[v] + self.succ[v]
        for p in list(self.pred[v]):
            self.succ[p] = [w for w in self.succ[p] if w != v]
        for w in list(self.succ[v]):
            self.pred[w] = [p for p in self.pred[w] if p != v]
        self.pred[v] = []
        self.succ[v] = []
        self.dead.add(v)
        self.version += 1
        name = self.names[v]
        if name is not None:
            self.names[v] = None
            if self._name_index is not None:
                self._name_index.pop(name, None)
        return touched

    def _ensure_name_index(self) -> Dict[str, int]:
        if self._name_index is None:
            self._name_index = {
                nm: i for i, nm in enumerate(self.names) if nm is not None
            }
        return self._name_index

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(
        self, keep: Sequence[bool], root: int
    ) -> Tuple["IndexedGraph", List[int]]:
        """Induced subgraph over vertices with ``keep[v]`` true.

        Returns the new graph plus ``orig_of`` mapping new indices back to
        indices of *this* graph.  ``root`` is an index of this graph and
        must be kept.
        """
        if not keep[root]:
            raise CircuitError("subgraph root must be kept")
        orig_of = [v for v in range(self.n) if keep[v]]
        new_of = {v: i for i, v in enumerate(orig_of)}
        succ = [
            [new_of[w] for w in self.succ[v] if keep[w]] for v in orig_of
        ]
        names = [self.names[v] for v in orig_of]
        sub = IndexedGraph(succ, root=new_of[root], names=names)
        return sub, orig_of

    def with_fake_source(self, targets: Iterable[int]) -> "IndexedGraph":
        """Add a fake super-source feeding ``targets`` (paper Section 4).

        The fake vertex gets index ``n`` of the new graph and no name; the
        returned graph shares vertex indices ``0..n-1`` with this one, so
        dominator results translate back directly.
        """
        succ = [list(adj) for adj in self.succ] + [sorted(set(targets))]
        names = list(self.names) + [None]
        return IndexedGraph(succ, root=self.root, names=names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexedGraph(n={self.n}, e={self.edge_count()}, root={self.root})"
