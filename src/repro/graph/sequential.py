"""Combinational-core extraction for sequential netlists.

Dominator analysis (like virtually all the paper's applications) is
defined on the combinational DAG.  Sequential benchmarks — the ISCAS-89
s-series and many IWLS'02 entries — contain D flip-flops; the standard
treatment, applied here, cuts every flip-flop: its output *Q* becomes a
pseudo primary input and its input *D* a pseudo primary output.  The
result is the *combinational core*, on which every analysis in this
library applies unchanged.

:func:`extract_combinational_core` performs the cut on a
:class:`SequentialCircuit`; :func:`repro.parsers.bench.load_sequential`
produces one from an ISCAS ``.bench`` file with ``DFF`` lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import CircuitError
from .circuit import Circuit
from .node import NodeType

#: Prefixes marking the pseudo I/O created by a flip-flop cut.
PSEUDO_INPUT_PREFIX = "ppi_"
PSEUDO_OUTPUT_PREFIX = "ppo_"


@dataclass
class SequentialCircuit:
    """A netlist with explicit D flip-flops.

    Attributes
    ----------
    name:
        Circuit name.
    combinational:
        The gate-level netlist *excluding* flip-flops; each flip-flop
        output appears in it as a primary input (same net name), and the
        flip-flop data inputs are ordinary internal nets.
    flops:
        ``{flop_output_name: data_input_name}`` — the state elements.
    primary_inputs / primary_outputs:
        The *original* interface (without the pseudo nets).
    """

    name: str
    combinational: Circuit
    flops: Dict[str, str]
    primary_inputs: List[str] = field(default_factory=list)
    primary_outputs: List[str] = field(default_factory=list)

    @property
    def num_state_bits(self) -> int:
        return len(self.flops)


def extract_combinational_core(sequential: SequentialCircuit) -> Circuit:
    """The combinational core: flip-flops cut into pseudo PIs / POs.

    Returns a purely combinational :class:`Circuit` whose inputs are the
    original primary inputs plus one input per flip-flop output (same
    net name, since the flop output already names an INPUT node of the
    combinational netlist), and whose outputs are the original primary
    outputs plus one
    ``ppo_<ff>`` buffer per flip-flop data input.  Dominator analysis on
    the core treats each state bit as an independent cut point — exactly
    how incremental synthesis tools scope combinational optimizations.
    """
    core = sequential.combinational.copy(sequential.name + "_core")
    outputs = list(sequential.primary_outputs)
    for flop_out, data_in in sequential.flops.items():
        if data_in not in core:
            raise CircuitError(
                f"flip-flop {flop_out!r} reads undefined net {data_in!r}"
            )
        ppo = PSEUDO_OUTPUT_PREFIX + flop_out
        if ppo not in core:
            core.add_gate(ppo, NodeType.BUF, [data_in])
        outputs.append(ppo)
    core.set_outputs(outputs)
    core.validate()
    return core


def unrolled(
    sequential: SequentialCircuit, frames: int, name: str = ""
) -> Circuit:
    """Time-frame expansion: ``frames`` copies of the core, chained.

    Frame *t*'s flip-flop inputs feed frame *t+1*'s pseudo inputs; the
    first frame's state is a fresh primary input bus.  Useful for
    analyzing sequential re-convergence with the combinational machinery
    (bounded model checking style).
    """
    if frames < 1:
        raise ValueError("frames must be positive")
    comb = sequential.combinational
    for flop_out, data_in in sequential.flops.items():
        if data_in not in comb:
            raise CircuitError(
                f"flip-flop {flop_out!r} reads undefined net {data_in!r}"
            )
    for po in sequential.primary_outputs:
        if po not in comb:
            raise CircuitError(f"primary output {po!r} is not a net")
    result = Circuit(name or f"{sequential.name}_u{frames}")

    def frame_name(net: str, t: int) -> str:
        return f"{net}@{t}"

    state_in: Dict[str, str] = {}
    for flop_out in sequential.flops:
        state_in[flop_out] = result.add_input(
            frame_name(PSEUDO_INPUT_PREFIX + flop_out, 0)
        )

    outputs: List[str] = []
    # The rename map of the frame just emitted.  A flop's data input may
    # itself be an INPUT node of the core (another flop's output, or a
    # primary input latched directly), so frame t's state must resolve
    # through frame t-1's map rather than assume a ``<net>@{t-1}`` gate
    # exists.
    prev_rename: Dict[str, str] = {}
    for t in range(frames):
        rename: Dict[str, str] = {}
        for node in comb.nodes():
            if node.type is NodeType.INPUT:
                if node.name in sequential.flops:
                    rename[node.name] = (
                        state_in[node.name]
                        if t == 0
                        else prev_rename[sequential.flops[node.name]]
                    )
                else:
                    rename[node.name] = result.add_input(
                        frame_name(node.name, t)
                    )
        for net in comb.topological_order():
            node = comb.node(net)
            if node.type is NodeType.INPUT:
                continue
            new_name = frame_name(node.name, t)
            rename[node.name] = new_name
            fanins = [rename[f] for f in node.fanins]
            if node.type.is_constant:
                result.add_constant(
                    new_name, 1 if node.type is NodeType.CONST1 else 0
                )
            else:
                result.add_gate(new_name, node.type, fanins)
        outputs.extend(rename[po] for po in sequential.primary_outputs)
        prev_rename = rename
    # Final-frame next-state nets are also observable.
    outputs.extend(
        prev_rename[data_in] for data_in in sequential.flops.values()
    )
    result.set_outputs(outputs)
    result.validate()
    return result
