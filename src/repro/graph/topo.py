"""Topological metrics over :class:`~repro.graph.indexed.IndexedGraph`.

Theorem 2 of the paper bounds the dominator-chain size by the length of the
longest path from *u* to *root*; :func:`longest_path_to_root` provides that
yardstick.  Logic-depth levels are also used by the circuit generators and
the statistics module.
"""

from __future__ import annotations

from typing import List

from .indexed import IndexedGraph


def levels_from_inputs(graph: IndexedGraph) -> List[int]:
    """Logic depth of each vertex (inputs are level 0).

    ``level[v]`` is the length (in edges) of the longest path from any
    source to *v*.
    """
    level = [0] * graph.n
    for v in graph.topological_order():
        for w in graph.succ[v]:
            if level[v] + 1 > level[w]:
                level[w] = level[v] + 1
    return level


def longest_path_to_root(graph: IndexedGraph) -> List[int]:
    """Length of the longest directed path from each vertex to the root.

    Vertices that cannot reach the root get -1.
    """
    dist = [-1] * graph.n
    dist[graph.root] = 0
    for v in reversed(graph.topological_order()):
        if v == graph.root:
            continue
        best = -1
        for w in graph.succ[v]:
            if dist[w] >= 0 and dist[w] + 1 > best:
                best = dist[w] + 1
        dist[v] = best
    return dist


def shortest_path_to_root(graph: IndexedGraph) -> List[int]:
    """Length of the shortest directed path from each vertex to the root.

    Vertices that cannot reach the root get -1.
    """
    dist = [-1] * graph.n
    dist[graph.root] = 0
    for v in reversed(graph.topological_order()):
        if v == graph.root:
            continue
        best = -1
        for w in graph.succ[v]:
            if dist[w] >= 0 and (best == -1 or dist[w] + 1 < best):
                best = dist[w] + 1
        dist[v] = best
    return dist


def depth(graph: IndexedGraph) -> int:
    """Logic depth of the whole cone (longest input-to-root path)."""
    return max(levels_from_inputs(graph))
