"""Graph restrictions used by the dominator algorithms.

Both the paper's algorithm (FINDMATCHINGVECTOR restricts ``C`` to ``C - v``)
and the baseline [11] (restriction of ``C`` with respect to the set of
vertices dominated by *v*) are expressed through the functions here.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import CircuitError
from .indexed import IndexedGraph


def remove_vertex(
    graph: IndexedGraph, v: int
) -> Tuple[IndexedGraph, List[int]]:
    """The restricted graph ``C' = C - v`` of the paper's Section 5.

    Removes *v* and every edge incident to it, then prunes vertices that can
    no longer reach the root (they cannot lie on any u→root path and would
    otherwise confuse dominator computations).

    Returns
    -------
    (subgraph, orig_of):
        ``orig_of[i]`` is the original index of new vertex ``i``.
    """
    if v == graph.root:
        raise CircuitError("cannot remove the root vertex")
    keep = graph.coreachable_to(graph.root, exclude=v)
    return graph.subgraph(keep, graph.root)


def remove_vertices(
    graph: IndexedGraph, removed: Sequence[int]
) -> Tuple[IndexedGraph, List[int]]:
    """Restriction of ``C`` by a set of vertices (baseline [11]).

    Removes every vertex in ``removed`` plus everything that can no longer
    reach the root.
    """
    removed_set = set(removed)
    if graph.root in removed_set:
        raise CircuitError("cannot remove the root vertex")
    mark = [False] * graph.n
    mark[graph.root] = True
    stack = [graph.root]
    while stack:
        cur = stack.pop()
        for w in graph.pred[cur]:
            if not mark[w] and w not in removed_set:
                mark[w] = True
                stack.append(w)
    return graph.subgraph(mark, graph.root)


def region_between(
    graph: IndexedGraph, start: int, sink: int
) -> Tuple[IndexedGraph, List[int]]:
    """Subgraph of vertices lying on paths from ``start`` to ``sink``.

    This is the search region of the paper's outer loop: ``start`` is the
    current single dominator *v* of *u* (or *u* itself) and ``sink`` is
    ``idom(v)``.  Because ``sink`` dominates ``start``, every vertex
    reachable from ``start`` that can reach ``sink`` lies strictly between
    them (or is one of them).

    The returned subgraph is rooted at ``sink``.
    """
    reach = graph.reachable_from(start)
    coreach = graph.coreachable_to(sink)
    keep = [reach[v] and coreach[v] for v in range(graph.n)]
    if not keep[start] or not keep[sink]:
        raise CircuitError("sink is not reachable from start")
    return graph.subgraph(keep, sink)


def merge_sources(
    graph: IndexedGraph, sources: Sequence[int]
) -> IndexedGraph:
    """Graph with a fake super-source feeding ``sources`` (Section 4).

    Used to compute *common* double-vertex dominators of a set of vertices:
    the chain of the fake vertex is the common chain of the set.  The fake
    vertex is index ``graph.n`` in the result.
    """
    if not sources:
        raise CircuitError("merge_sources needs at least one source")
    return graph.with_fake_source(sources)


def reversed_graph(graph: IndexedGraph) -> IndexedGraph:
    """Edge-reversed view (succ and pred swapped), rooted at the same index.

    Useful for treating the circuit output as a flow-graph entry when
    feeding standard (entry-oriented) dominator algorithms.
    """
    rev_succ: List[List[int]] = [list(graph.pred[v]) for v in range(graph.n)]
    return IndexedGraph(rev_succ, root=graph.root, names=list(graph.names))
