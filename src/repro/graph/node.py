"""Node (gate) types for circuit graphs.

The dominator algorithms in :mod:`repro.core` only care about the *topology*
of the circuit DAG, but the motivating applications from the paper's
introduction (signal probability, switching activity) need to evaluate gate
functions.  This module defines the gate vocabulary shared by the netlist
representation, the parsers and the logic simulator.
"""

from __future__ import annotations

import enum
from typing import Callable, Sequence


class NodeType(enum.Enum):
    """Kind of a circuit node.

    ``INPUT`` nodes are primary inputs (no fanin).  ``CONST0``/``CONST1``
    are constant drivers.  All other members are combinational gates with
    one or more fanins.
    """

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"  # fanins: (select, a, b) -> a if select == 0 else b

    @property
    def is_input(self) -> bool:
        return self is NodeType.INPUT

    @property
    def is_constant(self) -> bool:
        return self in (NodeType.CONST0, NodeType.CONST1)

    @property
    def is_gate(self) -> bool:
        return not (self.is_input or self.is_constant)


def _eval_mux(bits: Sequence[int]) -> int:
    if len(bits) != 3:
        raise ValueError("MUX gate requires exactly 3 fanins (sel, a, b)")
    sel, a, b = bits
    return b if sel else a


_EVALUATORS: dict[NodeType, Callable[[Sequence[int]], int]] = {
    NodeType.CONST0: lambda bits: 0,
    NodeType.CONST1: lambda bits: 1,
    NodeType.BUF: lambda bits: bits[0],
    NodeType.NOT: lambda bits: 1 - bits[0],
    NodeType.AND: lambda bits: int(all(bits)),
    NodeType.NAND: lambda bits: int(not all(bits)),
    NodeType.OR: lambda bits: int(any(bits)),
    NodeType.NOR: lambda bits: int(not any(bits)),
    NodeType.XOR: lambda bits: sum(bits) & 1,
    NodeType.XNOR: lambda bits: 1 - (sum(bits) & 1),
    NodeType.MUX: _eval_mux,
}

#: Minimum number of fanins each gate type accepts.
MIN_FANIN: dict[NodeType, int] = {
    NodeType.INPUT: 0,
    NodeType.CONST0: 0,
    NodeType.CONST1: 0,
    NodeType.BUF: 1,
    NodeType.NOT: 1,
    NodeType.AND: 1,
    NodeType.NAND: 1,
    NodeType.OR: 1,
    NodeType.NOR: 1,
    NodeType.XOR: 1,
    NodeType.XNOR: 1,
    NodeType.MUX: 3,
}

#: Maximum number of fanins each gate type accepts (None = unbounded).
MAX_FANIN: dict[NodeType, int | None] = {
    NodeType.INPUT: 0,
    NodeType.CONST0: 0,
    NodeType.CONST1: 0,
    NodeType.BUF: 1,
    NodeType.NOT: 1,
    NodeType.AND: None,
    NodeType.NAND: None,
    NodeType.OR: None,
    NodeType.NOR: None,
    NodeType.XOR: None,
    NodeType.XNOR: None,
    NodeType.MUX: 3,
}


def evaluate_gate(node_type: NodeType, fanin_bits: Sequence[int]) -> int:
    """Evaluate a single gate over 0/1 fanin values.

    Parameters
    ----------
    node_type:
        Gate kind; must not be :data:`NodeType.INPUT` (inputs have no
        function to evaluate).
    fanin_bits:
        Values of the gate's fanins, in fanin order.

    Returns
    -------
    int
        0 or 1.
    """
    if node_type is NodeType.INPUT:
        raise ValueError("primary inputs have no gate function")
    lo = MIN_FANIN[node_type]
    hi = MAX_FANIN[node_type]
    if len(fanin_bits) < lo or (hi is not None and len(fanin_bits) > hi):
        raise ValueError(
            f"{node_type.value} gate got {len(fanin_bits)} fanins, "
            f"expected between {lo} and {hi if hi is not None else 'inf'}"
        )
    return _EVALUATORS[node_type](fanin_bits)


def parse_node_type(token: str) -> NodeType:
    """Map a textual gate name (as found in .bench/BLIF files) to a type."""
    normalized = token.strip().lower()
    aliases = {
        "inv": NodeType.NOT,
        "buff": NodeType.BUF,
        "buffer": NodeType.BUF,
        "vdd": NodeType.CONST1,
        "gnd": NodeType.CONST0,
        "one": NodeType.CONST1,
        "zero": NodeType.CONST0,
    }
    if normalized in aliases:
        return aliases[normalized]
    try:
        return NodeType(normalized)
    except ValueError as exc:
        raise ValueError(f"unknown gate type {token!r}") from exc
