"""The :class:`Circuit` netlist — the central data model of the library.

A circuit is a named, directed acyclic graph whose vertices are primary
inputs and gates, following the paper's model ``C = (V, E, root)``: *V*
represents the set of gates and primary inputs, *E* describes the nets, and
edges are oriented in **signal direction** (from a gate's fanins toward the
gate).  A "path from *u* to *root*" in the paper is therefore a directed
path following fanout edges toward a primary output.

The class is deliberately mutable-but-checked: nodes are added through
methods that validate fanin arities and name uniqueness, and the expensive
derived structures (fanout lists, topological order) are computed lazily and
invalidated on mutation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import (
    CircuitError,
    DuplicateNodeError,
    NotADagError,
    UnknownNodeError,
)
from .node import MAX_FANIN, MIN_FANIN, NodeType


@dataclass
class Node:
    """A single vertex of the circuit graph.

    Attributes
    ----------
    name:
        Unique identifier within the circuit.
    type:
        Gate kind (:class:`~repro.graph.node.NodeType`).
    fanins:
        Names of driver nodes, in order (order matters for MUX).
    """

    name: str
    type: NodeType
    fanins: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        lo = MIN_FANIN[self.type]
        hi = MAX_FANIN[self.type]
        if len(self.fanins) < lo or (hi is not None and len(self.fanins) > hi):
            raise CircuitError(
                f"node {self.name!r}: {self.type.value} gate cannot take "
                f"{len(self.fanins)} fanins"
            )


class Circuit:
    """A combinational circuit netlist.

    Parameters
    ----------
    name:
        Human-readable circuit name (benchmark name).

    Examples
    --------
    >>> c = Circuit("half_adder")
    >>> c.add_input("a")
    'a'
    >>> c.add_input("b")
    'b'
    >>> c.add_gate("sum", NodeType.XOR, ["a", "b"])
    'sum'
    >>> c.add_gate("carry", NodeType.AND, ["a", "b"])
    'carry'
    >>> c.set_outputs(["sum", "carry"])
    >>> sorted(c.inputs)
    ['a', 'b']
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._inputs: List[str] = []
        self._outputs: List[str] = []
        self._fanouts: Optional[Dict[str, List[str]]] = None
        self._topo: Optional[List[str]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input. Returns the name for chaining."""
        self._insert(Node(name, NodeType.INPUT))
        self._inputs.append(name)
        return name

    def add_gate(
        self, name: str, node_type: NodeType, fanins: Sequence[str]
    ) -> str:
        """Add a gate driven by already-known or later-defined nodes.

        Fanins may reference names that have not been defined yet; the
        reference is resolved when the circuit is validated or when a
        derived structure is first requested.
        """
        if node_type.is_input:
            raise CircuitError("use add_input() to declare primary inputs")
        self._insert(Node(name, node_type, tuple(fanins)))
        return name

    def add_constant(self, name: str, value: int) -> str:
        """Add a constant-0 or constant-1 driver."""
        node_type = NodeType.CONST1 if value else NodeType.CONST0
        self._insert(Node(name, node_type))
        return name

    def set_outputs(self, names: Iterable[str]) -> None:
        """Declare the primary outputs (order preserved, duplicates merged)."""
        seen = set()
        ordered = []
        for name in names:
            if name not in seen:
                seen.add(name)
                ordered.append(name)
        self._outputs = ordered
        self._invalidate()

    def add_output(self, name: str) -> None:
        """Append one primary output if not already present."""
        if name not in self._outputs:
            self._outputs.append(name)
        self._invalidate()

    def _insert(self, node: Node) -> None:
        if node.name in self._nodes:
            raise DuplicateNodeError(f"node {node.name!r} already defined")
        self._nodes[node.name] = node
        self._invalidate()

    def _invalidate(self) -> None:
        self._fanouts = None
        self._topo = None

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def inputs(self) -> List[str]:
        """Primary input names, in declaration order."""
        return list(self._inputs)

    @property
    def outputs(self) -> List[str]:
        """Primary output names, in declaration order."""
        return list(self._outputs)

    def node(self, name: str) -> Node:
        """Look up a node by name (raises :class:`UnknownNodeError`)."""
        try:
            return self._nodes[name]
        except KeyError:
            raise UnknownNodeError(f"no node named {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[str]:
        return iter(self._nodes)

    def nodes(self) -> Iterator[Node]:
        """Iterate over all :class:`Node` records in insertion order."""
        return iter(self._nodes.values())

    def fanins(self, name: str) -> Tuple[str, ...]:
        """Driver names of ``name``."""
        return self.node(name).fanins

    def fanouts(self, name: str) -> List[str]:
        """Names of nodes driven by ``name`` (derived, cached)."""
        return list(self._fanout_map()[name])

    def fanout_degree(self, name: str) -> int:
        """Number of gates driven by ``name`` (the paper's ``Fanout(v)``)."""
        return len(self._fanout_map()[name])

    def _fanout_map(self) -> Dict[str, List[str]]:
        if self._fanouts is None:
            fanouts: Dict[str, List[str]] = {name: [] for name in self._nodes}
            for node in self._nodes.values():
                for driver in node.fanins:
                    if driver not in fanouts:
                        raise UnknownNodeError(
                            f"node {node.name!r} references undefined "
                            f"fanin {driver!r}"
                        )
                    fanouts[driver].append(node.name)
            self._fanouts = fanouts
        return self._fanouts

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Node names ordered so every fanin precedes its gate.

        Raises
        ------
        NotADagError
            If the netlist contains a combinational cycle.
        """
        if self._topo is None:
            indegree = {name: len(self.node(name).fanins) for name in self._nodes}
            fanouts = self._fanout_map()
            ready = [name for name, deg in indegree.items() if deg == 0]
            order: List[str] = []
            while ready:
                name = ready.pop()
                order.append(name)
                for sink in fanouts[name]:
                    indegree[sink] -= 1
                    if indegree[sink] == 0:
                        ready.append(sink)
            if len(order) != len(self._nodes):
                cyclic = sorted(n for n, d in indegree.items() if d > 0)
                raise NotADagError(
                    f"circuit {self.name!r} has a combinational cycle "
                    f"involving {cyclic[:5]}..."
                )
            self._topo = order
        return list(self._topo)

    def validate(self) -> None:
        """Check structural well-formedness, raising :class:`CircuitError`.

        Verifies that all fanin references resolve, the graph is acyclic,
        and every declared output exists.
        """
        self._fanout_map()
        self.topological_order()
        for out in self._outputs:
            if out not in self._nodes:
                raise UnknownNodeError(f"declared output {out!r} is undefined")
        for inp in self._inputs:
            if self._nodes[inp].type is not NodeType.INPUT:
                raise CircuitError(f"input list entry {inp!r} is not an INPUT node")

    def gate_count(self) -> int:
        """Number of non-input, non-constant nodes."""
        return sum(1 for node in self._nodes.values() if node.type.is_gate)

    def copy(self, name: Optional[str] = None) -> "Circuit":
        """Deep copy (nodes are immutable records, so sharing is safe)."""
        dup = Circuit(name or self.name)
        dup._nodes = dict(self._nodes)
        dup._inputs = list(self._inputs)
        dup._outputs = list(self._outputs)
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Circuit({self.name!r}, nodes={len(self._nodes)}, "
            f"inputs={len(self._inputs)}, outputs={len(self._outputs)})"
        )
