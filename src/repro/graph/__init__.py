"""Circuit-graph substrate: netlists, indexed DAG views and traversals."""

from .builder import CircuitBuilder
from .circuit import Circuit, Node
from .indexed import IndexedGraph
from .interop import (
    circuit_from_networkx,
    circuit_to_networkx,
    indexed_to_networkx,
)
from .node import NodeType, evaluate_gate, parse_node_type
from .rewrite import expand_xors, gate_type_histogram
from .sequential import (
    SequentialCircuit,
    extract_combinational_core,
    unrolled,
)
from .stats import CircuitStats, circuit_stats, reconvergent_fraction
from .topo import (
    depth,
    levels_from_inputs,
    longest_path_to_root,
    shortest_path_to_root,
)
from .transform import (
    merge_sources,
    region_between,
    remove_vertex,
    remove_vertices,
    reversed_graph,
)
from .traverse import (
    cone_inputs,
    cones_by_output,
    dead_nodes,
    output_cone,
    strip_dead_nodes,
    transitive_fanin,
    transitive_fanout,
)
from .validate import assert_well_formed, check_cone, check_no_dangling

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "CircuitStats",
    "IndexedGraph",
    "Node",
    "NodeType",
    "SequentialCircuit",
    "assert_well_formed",
    "check_cone",
    "check_no_dangling",
    "circuit_from_networkx",
    "circuit_stats",
    "circuit_to_networkx",
    "cone_inputs",
    "cones_by_output",
    "dead_nodes",
    "depth",
    "expand_xors",
    "extract_combinational_core",
    "gate_type_histogram",
    "evaluate_gate",
    "indexed_to_networkx",
    "levels_from_inputs",
    "longest_path_to_root",
    "merge_sources",
    "output_cone",
    "parse_node_type",
    "reconvergent_fraction",
    "region_between",
    "remove_vertex",
    "remove_vertices",
    "reversed_graph",
    "shortest_path_to_root",
    "strip_dead_nodes",
    "transitive_fanin",
    "transitive_fanout",
    "unrolled",
]
