"""Structural validation helpers beyond :meth:`Circuit.validate`.

The dominator algorithms assume their input cone is a single-rooted DAG in
which every vertex can reach the root.  :func:`check_cone` asserts exactly
that and produces actionable error messages for malformed inputs.
"""

from __future__ import annotations

from typing import List

from ..errors import CircuitError
from .circuit import Circuit
from .indexed import IndexedGraph


def check_cone(graph: IndexedGraph) -> None:
    """Assert that every vertex of ``graph`` can reach its root.

    Raises
    ------
    CircuitError
        Naming the first few offending vertices.
    """
    coreach = graph.coreachable_to(graph.root)
    stranded = [graph.name_of(v) for v in range(graph.n) if not coreach[v]]
    if stranded:
        raise CircuitError(
            f"{len(stranded)} vertices cannot reach the root, "
            f"e.g. {stranded[:5]}"
        )
    graph.topological_order()  # raises on cycles


def check_no_dangling(circuit: Circuit) -> List[str]:
    """Return gates with zero fanout that are not primary outputs.

    Unused primary inputs (and constants) are part of the interface and
    therefore not reported.
    """
    outputs = set(circuit.outputs)
    return [
        node.name
        for node in circuit.nodes()
        if node.type.is_gate
        and circuit.fanout_degree(node.name) == 0
        and node.name not in outputs
    ]


def assert_well_formed(circuit: Circuit) -> None:
    """Full-strength validation used by parsers and generators.

    Checks netlist validity, that at least one output exists, and that no
    gate dangles.
    """
    circuit.validate()
    if not circuit.outputs:
        raise CircuitError(f"circuit {circuit.name!r} declares no outputs")
    dangling = check_no_dangling(circuit)
    if dangling:
        raise CircuitError(
            f"circuit {circuit.name!r} has {len(dangling)} dangling "
            f"gates, e.g. {sorted(dangling)[:5]}"
        )
