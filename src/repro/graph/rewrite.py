"""Structural netlist rewrites.

:func:`expand_xors` rewrites every XOR/XNOR into four NAND gates — the
exact relationship between the ISCAS-85 pair C499 (XOR form) and C1355
(NAND form) that both appear in the paper's Table 1.  The rewrite keeps
the function identical while multiplying the reconvergence (each XOR
becomes a little diamond), which is why C1355 shows *more* double-vertex
dominators than C499 despite computing the same outputs.
"""

from __future__ import annotations


from .circuit import Circuit
from .node import NodeType


def expand_xors(circuit: Circuit, suffix: str = "_x") -> Circuit:
    """Rewrite XOR/XNOR gates into NAND networks (function-preserving).

    ``a XOR b = NAND(NAND(a, t), NAND(b, t))`` with ``t = NAND(a, b)``;
    wider XORs are decomposed into a chain first.  XNOR adds a final
    NAND-as-inverter stage.
    """
    result = Circuit(circuit.name + suffix)
    counter = [0]

    def fresh(base: str) -> str:
        counter[0] += 1
        return f"{base}_{counter[0]}{suffix}"

    def xor2(a: str, bb: str, out_name: str = "") -> str:
        t = result.add_gate(fresh("nt"), NodeType.NAND, [a, bb])
        left = result.add_gate(fresh("nl"), NodeType.NAND, [a, t])
        right = result.add_gate(fresh("nr"), NodeType.NAND, [bb, t])
        return result.add_gate(
            out_name or fresh("nx"), NodeType.NAND, [left, right]
        )

    for node in circuit.nodes():
        if node.type is NodeType.INPUT:
            result.add_input(node.name)
        elif node.type in (NodeType.XOR, NodeType.XNOR):
            acc = node.fanins[0]
            for nxt in node.fanins[1:-1]:
                acc = xor2(acc, nxt)
            last = node.fanins[-1]
            if node.type is NodeType.XOR:
                if len(node.fanins) == 1:
                    result.add_gate(node.name, NodeType.BUF, [acc])
                else:
                    xor2(acc, last, out_name=node.name)
            else:
                if len(node.fanins) == 1:
                    inner = acc
                else:
                    inner = xor2(acc, last)
                result.add_gate(node.name, NodeType.NAND, [inner, inner])
        else:
            result.add_gate(node.name, node.type, node.fanins)
    result.set_outputs(circuit.outputs)
    result.validate()
    return result


def gate_type_histogram(circuit: Circuit) -> dict:
    """Count of nodes per gate type — used by tests and stats."""
    hist: dict = {}
    for node in circuit.nodes():
        hist[node.type] = hist.get(node.type, 0) + 1
    return hist
