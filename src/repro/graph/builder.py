"""Fluent construction helpers for :class:`~repro.graph.circuit.Circuit`.

The generators in :mod:`repro.circuits.generators` create thousands of gates
programmatically; this builder removes the name-bookkeeping boilerplate:
it auto-generates unique names, offers one method per gate type, and
collapses degenerate gates (single-fanin AND/OR become buffers).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from .circuit import Circuit
from .node import NodeType


class CircuitBuilder:
    """Incrementally builds a :class:`Circuit` with auto-named gates.

    Examples
    --------
    >>> b = CircuitBuilder("full_adder")
    >>> a, bb, cin = b.inputs("a", "b", "cin")
    >>> s = b.xor(a, bb, cin, name="sum")
    >>> cout = b.or_(b.and_(a, bb), b.and_(cin, b.xor(a, bb)), name="cout")
    >>> circuit = b.finish([s, cout])
    >>> circuit.gate_count()
    5
    """

    def __init__(self, name: str = "circuit", prefix: str = "g"):
        self.circuit = Circuit(name)
        self._prefix = prefix
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    def fresh_name(self, hint: Optional[str] = None) -> str:
        """Next unused auto-generated node name."""
        base = hint or self._prefix
        while True:
            candidate = f"{base}{next(self._counter)}"
            if candidate not in self.circuit:
                return candidate

    def input(self, name: Optional[str] = None) -> str:
        return self.circuit.add_input(name or self.fresh_name("in"))

    def inputs(self, *names: str) -> List[str]:
        """Declare several primary inputs at once."""
        return [self.circuit.add_input(name) for name in names]

    def input_bus(self, base: str, width: int) -> List[str]:
        """Declare ``base0 .. base<width-1>`` primary inputs."""
        return [self.circuit.add_input(f"{base}{i}") for i in range(width)]

    def constant(self, value: int, name: Optional[str] = None) -> str:
        return self.circuit.add_constant(
            name or self.fresh_name("const"), value
        )

    # ------------------------------------------------------------------
    def gate(
        self,
        node_type: NodeType,
        fanins: Sequence[str],
        name: Optional[str] = None,
    ) -> str:
        """Add an arbitrary gate; returns its name."""
        return self.circuit.add_gate(
            name or self.fresh_name(), node_type, list(fanins)
        )

    def _nary(
        self, node_type: NodeType, fanins: Sequence[str], name: Optional[str]
    ) -> str:
        if len(fanins) == 1 and name is None and node_type in (
            NodeType.AND,
            NodeType.OR,
            NodeType.XOR,
        ):
            # Degenerate n-ary gate: pass the signal through unchanged.
            return fanins[0]
        return self.gate(node_type, fanins, name)

    def and_(self, *fanins: str, name: Optional[str] = None) -> str:
        return self._nary(NodeType.AND, fanins, name)

    def or_(self, *fanins: str, name: Optional[str] = None) -> str:
        return self._nary(NodeType.OR, fanins, name)

    def xor(self, *fanins: str, name: Optional[str] = None) -> str:
        return self._nary(NodeType.XOR, fanins, name)

    def nand(self, *fanins: str, name: Optional[str] = None) -> str:
        return self.gate(NodeType.NAND, fanins, name)

    def nor(self, *fanins: str, name: Optional[str] = None) -> str:
        return self.gate(NodeType.NOR, fanins, name)

    def xnor(self, *fanins: str, name: Optional[str] = None) -> str:
        return self.gate(NodeType.XNOR, fanins, name)

    def not_(self, fanin: str, name: Optional[str] = None) -> str:
        return self.gate(NodeType.NOT, [fanin], name)

    def buf(self, fanin: str, name: Optional[str] = None) -> str:
        return self.gate(NodeType.BUF, [fanin], name)

    def mux(
        self, select: str, a: str, b: str, name: Optional[str] = None
    ) -> str:
        """2:1 multiplexer: output = a when select==0 else b."""
        return self.gate(NodeType.MUX, [select, a, b], name)

    # ------------------------------------------------------------------
    # balanced reduction trees (keep circuits shallow and realistic)
    # ------------------------------------------------------------------
    def tree(
        self,
        node_type: NodeType,
        signals: Sequence[str],
        arity: int = 2,
        name: Optional[str] = None,
    ) -> str:
        """Reduce ``signals`` with a balanced tree of ``node_type`` gates."""
        if not signals:
            raise ValueError("tree() needs at least one signal")
        level = list(signals)
        while len(level) > 1:
            nxt: List[str] = []
            for i in range(0, len(level), arity):
                chunk = level[i : i + arity]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                else:
                    is_last = len(level) <= arity
                    nxt.append(
                        self.gate(
                            node_type, chunk, name if is_last else None
                        )
                    )
            level = nxt
        if name is not None and level[0] != name:
            # Single input signal and an explicit name: insert a buffer so
            # the requested name exists.
            return self.buf(level[0], name)
        return level[0]

    def and_tree(self, signals: Sequence[str], name: Optional[str] = None) -> str:
        return self.tree(NodeType.AND, signals, name=name)

    def or_tree(self, signals: Sequence[str], name: Optional[str] = None) -> str:
        return self.tree(NodeType.OR, signals, name=name)

    def xor_tree(self, signals: Sequence[str], name: Optional[str] = None) -> str:
        return self.tree(NodeType.XOR, signals, name=name)

    # ------------------------------------------------------------------
    def finish(self, outputs: Sequence[str]) -> Circuit:
        """Declare outputs, validate and return the built circuit."""
        self.circuit.set_outputs(outputs)
        self.circuit.validate()
        return self.circuit
