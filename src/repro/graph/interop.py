"""Interoperability with :mod:`networkx`.

The dominator machinery works on the library's own lean structures, but
users living in the networkx ecosystem can convert in both directions:
node attributes carry gate types so the round trip is lossless.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from ..errors import CircuitError
from .circuit import Circuit
from .indexed import IndexedGraph
from .node import NodeType


def circuit_to_networkx(circuit: Circuit) -> "nx.DiGraph":
    """The netlist as a DiGraph in signal direction.

    Node attributes: ``type`` (NodeType value string), ``is_output``.
    Edge order (fanin position) is stored as the ``position`` attribute,
    so MUX operand order survives the round trip.
    """
    graph = nx.DiGraph(name=circuit.name)
    outputs = set(circuit.outputs)
    for node in circuit.nodes():
        graph.add_node(
            node.name, type=node.type.value, is_output=node.name in outputs
        )
    for node in circuit.nodes():
        for position, driver in enumerate(node.fanins):
            graph.add_edge(driver, node.name, position=position)
    return graph


def circuit_from_networkx(
    graph: "nx.DiGraph", name: Optional[str] = None
) -> Circuit:
    """Rebuild a :class:`Circuit` from a DiGraph produced by
    :func:`circuit_to_networkx` (or any DiGraph with ``type`` attributes).
    """
    circuit = Circuit(name or graph.graph.get("name", "from_networkx"))
    try:
        order = list(nx.topological_sort(graph))
    except nx.NetworkXUnfeasible as exc:
        raise CircuitError("graph has a cycle") from exc
    for node in order:
        type_token = graph.nodes[node].get("type", "input")
        node_type = NodeType(type_token)
        if node_type is NodeType.INPUT:
            circuit.add_input(node)
        else:
            fanins = sorted(
                graph.predecessors(node),
                key=lambda p: graph.edges[p, node].get("position", 0),
            )
            if node_type.is_constant:
                circuit.add_constant(
                    node, 1 if node_type is NodeType.CONST1 else 0
                )
            else:
                circuit.add_gate(node, node_type, fanins)
    outputs = [
        node
        for node in order
        if graph.nodes[node].get("is_output", False)
    ]
    if not outputs:
        outputs = [node for node in order if graph.out_degree(node) == 0]
    circuit.set_outputs(outputs)
    circuit.validate()
    return circuit


def indexed_to_networkx(graph: IndexedGraph) -> "nx.DiGraph":
    """One cone as a DiGraph over vertex names (root flagged)."""
    out = nx.DiGraph()
    for v in range(graph.n):
        out.add_node(graph.name_of(v), is_root=v == graph.root)
    for v in range(graph.n):
        for w in graph.succ[v]:
            out.add_edge(graph.name_of(v), graph.name_of(w))
    return out
