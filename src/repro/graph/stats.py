"""Circuit statistics — the descriptive columns of the paper's Table 1.

:func:`circuit_stats` produces the ``in``/``out`` columns plus additional
structural measures (gate count, depth, reconvergence ratio) that explain
*why* a given benchmark has many or few double-vertex dominators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .circuit import Circuit
from .indexed import IndexedGraph
from .topo import depth


@dataclass(frozen=True)
class CircuitStats:
    """Summary statistics of one circuit netlist."""

    name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    num_edges: int
    max_depth: int
    max_fanout: int
    reconvergent_fraction: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "in": self.num_inputs,
            "out": self.num_outputs,
            "gates": self.num_gates,
            "edges": self.num_edges,
            "depth": self.max_depth,
            "max_fanout": self.max_fanout,
            "reconv": round(self.reconvergent_fraction, 3),
        }


def reconvergent_fraction(circuit: Circuit) -> float:
    """Fraction of nodes with fanout degree greater than one.

    Multi-fanout stems are exactly the potential origins of re-converging
    paths (paper Section 2); a tree-like circuit scores 0.0.
    """
    names = [name for name in circuit]
    if not names:
        return 0.0
    multi = sum(1 for name in names if circuit.fanout_degree(name) > 1)
    return multi / len(names)


def circuit_stats(circuit: Circuit) -> CircuitStats:
    """Compute :class:`CircuitStats` for a netlist."""
    circuit.validate()
    num_edges = sum(len(node.fanins) for node in circuit.nodes())
    max_fanout = max(
        (circuit.fanout_degree(name) for name in circuit), default=0
    )
    max_depth = 0
    for out in circuit.outputs:
        cone = IndexedGraph.from_circuit(circuit, out)
        max_depth = max(max_depth, depth(cone))
    return CircuitStats(
        name=circuit.name,
        num_inputs=len(circuit.inputs),
        num_outputs=len(circuit.outputs),
        num_gates=circuit.gate_count(),
        num_edges=num_edges,
        max_depth=max_depth,
        max_fanout=max_fanout,
        reconvergent_fraction=reconvergent_fraction(circuit),
    )
