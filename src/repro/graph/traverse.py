"""Name-level traversal utilities over :class:`~repro.graph.circuit.Circuit`.

These helpers operate on the netlist (string names) and are used by the
parsers, the statistics module and the application layer.  Algorithmic code
uses the faster integer routines on :class:`~repro.graph.indexed.IndexedGraph`.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .circuit import Circuit


def transitive_fanin(circuit: Circuit, name: str) -> Set[str]:
    """All nodes with a directed path *to* ``name`` (excluding ``name``)."""
    seen: Set[str] = set()
    stack = list(circuit.fanins(name))
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        stack.extend(circuit.fanins(cur))
    return seen


def transitive_fanout(circuit: Circuit, name: str) -> Set[str]:
    """All nodes with a directed path *from* ``name`` (excluding ``name``)."""
    seen: Set[str] = set()
    stack = list(circuit.fanouts(name))
    while stack:
        cur = stack.pop()
        if cur in seen:
            continue
        seen.add(cur)
        stack.extend(circuit.fanouts(cur))
    return seen


def output_cone(circuit: Circuit, output: str) -> Set[str]:
    """Transitive fanin cone of one output, including the output itself."""
    cone = transitive_fanin(circuit, output)
    cone.add(output)
    return cone


def cone_inputs(circuit: Circuit, output: str) -> List[str]:
    """Primary inputs feeding one output, in declaration order."""
    cone = output_cone(circuit, output)
    return [name for name in circuit.inputs if name in cone]


def cones_by_output(circuit: Circuit) -> Dict[str, Set[str]]:
    """Map each primary output to its transitive fanin cone."""
    return {out: output_cone(circuit, out) for out in circuit.outputs}


def dead_nodes(circuit: Circuit) -> Set[str]:
    """Nodes that feed no primary output (dangling logic)."""
    live: Set[str] = set()
    stack = [out for out in circuit.outputs if out in circuit]
    while stack:
        cur = stack.pop()
        if cur in live:
            continue
        live.add(cur)
        stack.extend(circuit.fanins(cur))
    return {name for name in circuit} - live


def strip_dead_nodes(circuit: Circuit) -> Circuit:
    """Return a copy of ``circuit`` without dangling logic.

    Primary inputs are kept even when dead (they are part of the interface),
    matching common netlist-tool behaviour.
    """
    dead = dead_nodes(circuit)
    result = Circuit(circuit.name)
    for node in circuit.nodes():
        if node.name in dead and node.type.is_gate:
            continue
        if node.type.is_input:
            result.add_input(node.name)
        else:
            result.add_gate(node.name, node.type, node.fanins)
    result.set_outputs(circuit.outputs)
    return result
