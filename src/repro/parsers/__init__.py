"""Netlist I/O: ISCAS .bench, BLIF and Graphviz DOT export."""

from . import bench, blif, dot, verilog
from .dot import chain_to_dot, circuit_to_dot, dominator_tree_to_dot

__all__ = [
    "bench",
    "blif",
    "chain_to_dot",
    "circuit_to_dot",
    "dominator_tree_to_dot",
    "dot",
    "verilog",
]
