"""Minimal Berkeley Logic Interchange Format (BLIF) reader and writer.

Supports the combinational subset used by the MCNC benchmarks that appear
in the paper's Table 1 (alu2, apex5, frg2, ...): ``.model``, ``.inputs``,
``.outputs``, ``.names`` with single-output cover tables, and ``.end``.
Cover tables are mapped onto the gate vocabulary when they match a
standard gate; everything else becomes a generic AND/OR-of-minterm
expansion so that arbitrary two-level covers still load.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import CircuitError, ParseError
from ..graph.circuit import Circuit
from ..graph.node import NodeType


def _classify_cover(
    rows: Sequence[Tuple[str, str]], fanin_count: int
) -> Optional[Tuple[NodeType, bool]]:
    """Recognize a cover as a standard gate.

    Returns ``(gate_type, invert_inputs)`` or ``None`` when the cover is
    not one of the standard shapes.
    """
    if not rows:
        return None
    patterns = sorted(row[0] for row in rows)
    values = {row[1] for row in rows}
    if len(values) != 1:
        return None
    on = values == {"1"}
    all_ones = "1" * fanin_count
    all_zeros = "0" * fanin_count
    if fanin_count == 1:
        if patterns == ["1"]:
            return (NodeType.BUF if on else NodeType.NOT, False)
        if patterns == ["0"]:
            return (NodeType.NOT if on else NodeType.BUF, False)
        return None
    if patterns == [all_ones]:
        # Single product of positive literals.
        return (NodeType.AND if on else NodeType.NAND, False)
    if patterns == [all_zeros]:
        return (NodeType.NOR if on else NodeType.OR, False)
    one_hot = sorted(
        "-" * i + "1" + "-" * (fanin_count - i - 1) for i in range(fanin_count)
    )
    if patterns == one_hot:
        return (NodeType.OR if on else NodeType.NOR, False)
    zero_hot = sorted(
        "-" * i + "0" + "-" * (fanin_count - i - 1) for i in range(fanin_count)
    )
    if patterns == zero_hot:
        return (NodeType.NAND if on else NodeType.AND, False)
    # Parity covers: every fully-specified odd (XOR) or even (XNOR)
    # pattern, exactly half of the 2^k minterms.
    if all("-" not in p for p in patterns) and len(patterns) == (
        1 << (fanin_count - 1)
    ):
        ones = {p.count("1") % 2 for p in patterns}
        if ones == {1}:
            return (NodeType.XOR if on else NodeType.XNOR, False)
        if ones == {0}:
            return (NodeType.XNOR if on else NodeType.XOR, False)
    return None


def loads(text: str, name: str = "blif") -> Circuit:
    """Parse BLIF source text into a :class:`Circuit`."""
    # Join continuation lines and strip comments.
    logical: List[Tuple[int, str]] = []
    pending = ""
    pending_line = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if pending:
            line = pending + " " + line.strip()
            lineno = pending_line
            pending = ""
        if line.endswith("\\"):
            pending = line[:-1].strip()
            pending_line = lineno
            continue
        logical.append((lineno, line.strip()))
    if pending:
        raise ParseError("dangling line continuation", pending_line)

    circuit = Circuit(name)
    inputs: List[str] = []
    outputs: List[str] = []
    aux_counter = [0]

    def fresh(base: str) -> str:
        aux_counter[0] += 1
        return f"_{base}{aux_counter[0]}"

    # Gather .names blocks: (lineno, signals, rows).
    blocks: List[Tuple[int, List[str], List[Tuple[str, str]]]] = []
    i = 0
    while i < len(logical):
        lineno, line = logical[i]
        tokens = line.split()
        directive = tokens[0]
        if directive == ".model":
            if len(tokens) > 1:
                circuit.name = tokens[1]
            i += 1
        elif directive == ".inputs":
            inputs.extend(tokens[1:])
            i += 1
        elif directive == ".outputs":
            outputs.extend(tokens[1:])
            i += 1
        elif directive == ".names":
            signals = tokens[1:]
            if not signals:
                raise ParseError(".names requires at least an output", lineno)
            rows: List[Tuple[str, str]] = []
            i += 1
            while i < len(logical) and not logical[i][1].startswith("."):
                row_line, row = logical[i]
                parts = row.split()
                if len(signals) == 1:
                    if len(parts) != 1 or parts[0] not in ("0", "1"):
                        raise ParseError("bad constant row", row_line)
                    rows.append(("", parts[0]))
                else:
                    if len(parts) != 2:
                        raise ParseError("bad cover row", row_line)
                    if len(parts[0]) != len(signals) - 1:
                        raise ParseError(
                            "cover width does not match fanin count", row_line
                        )
                    rows.append((parts[0], parts[1]))
                i += 1
            blocks.append((lineno, signals, rows))
        elif directive == ".end":
            i += 1
        elif directive in (".latch", ".subckt", ".gate"):
            raise ParseError(
                f"unsupported BLIF construct {directive} (combinational "
                "subset only)",
                lineno,
            )
        else:
            raise ParseError(f"unknown directive {directive}", lineno)

    # Duplicate and dangling references are diagnosed before any gate is
    # built: .names blocks may forward-reference later blocks, so the
    # check needs the full set of defined signals first.
    defined_at: Dict[str, int] = {}
    for pi in inputs:
        if pi in defined_at:
            raise ParseError(f"duplicate input {pi!r}")
        defined_at[pi] = 0
    for lineno, signals, rows in blocks:
        target = signals[-1]
        if target in defined_at:
            raise ParseError(
                f"duplicate definition of {target!r}", lineno
            )
        defined_at[target] = lineno
    for lineno, signals, rows in blocks:
        for fanin in signals[:-1]:
            if fanin not in defined_at:
                raise ParseError(
                    f"cover for {signals[-1]!r} references undefined "
                    f"signal {fanin!r}",
                    lineno,
                )
    for out in outputs:
        if out not in defined_at:
            raise ParseError(f"declared output {out!r} is never defined")

    for pi in inputs:
        circuit.add_input(pi)

    for lineno, signals, rows in blocks:
        target = signals[-1]
        fanins = signals[:-1]
        if not fanins:
            value = rows[0][1] if rows else "0"
            circuit.add_constant(target, int(value))
            continue
        classified = _classify_cover(rows, len(fanins))
        if classified is not None:
            circuit.add_gate(target, classified[0], fanins)
            continue
        # Generic sum-of-products expansion.
        on_rows = [r for r in rows if r[1] == "1"]
        complemented = False
        if not on_rows:
            on_rows = [r for r in rows if r[1] == "0"]
            complemented = True
        products: List[str] = []
        for pattern, _ in on_rows:
            literals: List[str] = []
            for bit, signal in zip(pattern, fanins):
                if bit == "1":
                    literals.append(signal)
                elif bit == "0":
                    inv = fresh("not")
                    circuit.add_gate(inv, NodeType.NOT, [signal])
                    literals.append(inv)
            if not literals:
                raise ParseError("all-dontcare cover row", lineno)
            if len(literals) == 1:
                products.append(literals[0])
            else:
                prod = fresh("and")
                circuit.add_gate(prod, NodeType.AND, literals)
                products.append(prod)
        final_type = NodeType.NOR if complemented else NodeType.OR
        if len(products) == 1 and not complemented:
            circuit.add_gate(target, NodeType.BUF, products)
        else:
            circuit.add_gate(target, final_type, products)

    circuit.set_outputs(outputs)
    try:
        circuit.validate()
    except CircuitError as exc:  # structural problems, e.g. a cycle
        raise ParseError(str(exc)) from exc
    return circuit


def load(path: Union[str, Path]) -> Circuit:
    """Read a BLIF file from disk."""
    path = Path(path)
    return loads(path.read_text(), name=path.stem)


_COVER_OF: Dict[NodeType, str] = {
    NodeType.BUF: "1 1",
    NodeType.NOT: "0 1",
}


def dumps(circuit: Circuit) -> str:
    """Serialize a circuit to BLIF text (round-trips with loads)."""
    lines = [f".model {circuit.name}"]
    lines.append(".inputs " + " ".join(circuit.inputs))
    lines.append(".outputs " + " ".join(circuit.outputs))
    for node in circuit.nodes():
        if node.type is NodeType.INPUT:
            continue
        sig = " ".join(list(node.fanins) + [node.name])
        k = len(node.fanins)
        lines.append(f".names {sig}")
        if node.type is NodeType.CONST0:
            pass  # empty cover = constant 0
        elif node.type is NodeType.CONST1:
            lines.append("1")
        elif node.type in _COVER_OF:
            lines.append(_COVER_OF[node.type])
        elif node.type is NodeType.AND:
            lines.append("1" * k + " 1")
        elif node.type is NodeType.NAND:
            lines.append("1" * k + " 0")
        elif node.type is NodeType.OR:
            for i in range(k):
                lines.append("-" * i + "1" + "-" * (k - i - 1) + " 1")
        elif node.type is NodeType.NOR:
            lines.append("0" * k + " 1")
        elif node.type in (NodeType.XOR, NodeType.XNOR):
            odd = node.type is NodeType.XOR
            for mask in range(1 << k):
                ones = bin(mask).count("1")
                if (ones % 2 == 1) == odd:
                    pattern = "".join(
                        "1" if mask >> (k - 1 - i) & 1 else "0" for i in range(k)
                    )
                    lines.append(pattern + " 1")
        elif node.type is NodeType.MUX:
            lines.append("01- 1")  # sel=0 -> a
            lines.append("1-1 1")  # sel=1 -> b
        else:  # pragma: no cover - exhaustive over NodeType
            raise ParseError(f"cannot serialize node type {node.type}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def dump(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write a circuit to a BLIF file."""
    Path(path).write_text(dumps(circuit))
