"""Graphviz DOT export for circuits, dominator trees and chains.

Purely for visualization/debugging: render a circuit with its dominator
tree overlaid (dashed red edges), or highlight one vertex's dominator
chain, reproducing the look of the paper's Figure 1.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..core.chain import DominatorChain
from ..dominators.tree import DominatorTree
from ..graph.circuit import Circuit
from ..graph.indexed import IndexedGraph
from ..graph.node import NodeType

_SHAPES = {
    NodeType.INPUT: "circle",
    NodeType.CONST0: "plaintext",
    NodeType.CONST1: "plaintext",
}


def circuit_to_dot(circuit: Circuit, rankdir: str = "BT") -> str:
    """The netlist as a DOT digraph (signal direction bottom-to-top)."""
    lines = [f'digraph "{circuit.name}" {{', f"  rankdir={rankdir};"]
    outputs = set(circuit.outputs)
    for node in circuit.nodes():
        shape = _SHAPES.get(node.type, "box")
        label = node.name if node.type.is_input else f"{node.name}\\n{node.type.value}"
        extra = ' peripheries=2' if node.name in outputs else ""
        lines.append(f'  "{node.name}" [shape={shape} label="{label}"{extra}];')
    for node in circuit.nodes():
        for driver in node.fanins:
            lines.append(f'  "{driver}" -> "{node.name}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def dominator_tree_to_dot(
    graph: IndexedGraph, tree: DominatorTree
) -> str:
    """The dominator tree T(C) as a DOT digraph (paper Figure 1(b))."""
    lines = ['digraph "dominator_tree" {', "  rankdir=BT;"]
    for v in tree.iter_reachable():
        lines.append(f'  "{graph.name_of(v)}";')
    for v in tree.iter_reachable():
        if v != tree.root:
            lines.append(
                f'  "{graph.name_of(v)}" -> "{graph.name_of(tree.idom[v])}"'
                " [style=dashed color=red];"
            )
    lines.append("}")
    return "\n".join(lines) + "\n"


def chain_to_dot(graph: IndexedGraph, chain: DominatorChain) -> str:
    """A circuit cone with one dominator chain highlighted.

    Side-1 vertices are filled blue, side-2 vertices green, the target
    orange; chain order is annotated with the index attribute.
    """
    fills = {1: "lightblue", 2: "palegreen"}
    in_chain = set(chain.vertices())
    lines = ['digraph "chain" {', "  rankdir=BT;"]
    for v in range(graph.n):
        name = graph.name_of(v)
        if v == chain.target:
            style = ' style=filled fillcolor=orange'
        elif v in in_chain:
            style = (
                f' style=filled fillcolor={fills[chain.flag(v)]}'
                f' label="{name}\\n#{chain.index(v)}"'
            )
        else:
            style = ""
        lines.append(f'  "{name}" [{style.strip()}];')
    for v in range(graph.n):
        for w in graph.succ[v]:
            lines.append(f'  "{graph.name_of(v)}" -> "{graph.name_of(w)}";')
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(text: str, path: Union[str, Path]) -> None:
    """Write DOT text to a file."""
    Path(path).write_text(text)
