"""Structural (gate-level) Verilog reader and writer.

Supports the flat netlist subset that synthesis tools emit and that the
IWLS benchmark collections also ship alongside .bench/.blif::

    module top (a, b, y);
      input a, b;
      output y;
      wire w1;
      and g1 (w1, a, b);     // gate instances: output first
      not g2 (y, w1);
      assign y2 = w1;        // alias assigns
    endmodule

Primitive gates: and, nand, or, nor, xor, xnor, not, buf.  Behavioral
constructs (always, case, operators in assign) are out of scope and raise
:class:`~repro.errors.ParseError` with the offending line.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

from ..errors import CircuitError, ParseError
from ..graph.circuit import Circuit
from ..graph.node import NodeType

_PRIMITIVES = {
    "and": NodeType.AND,
    "nand": NodeType.NAND,
    "or": NodeType.OR,
    "nor": NodeType.NOR,
    "xor": NodeType.XOR,
    "xnor": NodeType.XNOR,
    "not": NodeType.NOT,
    "buf": NodeType.BUF,
}

_TOKEN_FOR = {v: k for k, v in _PRIMITIVES.items()}

_MODULE_RE = re.compile(
    r"module\s+(\w+)\s*\(([^)]*)\)\s*;", re.DOTALL
)
_GATE_RE = re.compile(
    r"^(\w+)\s+(\w+)?\s*\(\s*([^)]*?)\s*\)$", re.DOTALL
)
_ASSIGN_RE = re.compile(r"^assign\s+(\w+)\s*=\s*(\w+)$")


def _strip_comments(text: str) -> str:
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def _line_of(text: str, pos: int) -> int:
    return text.count("\n", 0, pos) + 1


def loads(text: str, name: str = "") -> Circuit:
    """Parse structural Verilog source into a :class:`Circuit`."""
    clean = _strip_comments(text)
    match = _MODULE_RE.search(clean)
    if not match:
        raise ParseError("no module declaration found")
    module_name = match.group(1)
    body_start = match.end()
    end = clean.find("endmodule", body_start)
    if end < 0:
        raise ParseError("missing endmodule")
    body = clean[body_start:end]

    circuit = Circuit(name or module_name)
    inputs: List[str] = []
    outputs: List[str] = []
    aliases: Dict[str, str] = {}
    gates: List[Tuple[int, NodeType, str, List[str]]] = []

    offset = body_start
    for raw in body.split(";"):
        stmt = " ".join(raw.split())
        # Report the line the statement's first token is on, not the line
        # the previous ';' ended on (they differ across line breaks).
        leading = len(raw) - len(raw.lstrip())
        lineno = _line_of(clean, offset + leading)
        offset += len(raw) + 1
        if not stmt:
            continue
        keyword = stmt.split()[0]
        rest = stmt[len(keyword):].strip()
        if keyword in ("input", "output", "wire"):
            if "[" in rest:
                raise ParseError(
                    "vector ports/wires are not supported (flatten first)",
                    lineno,
                )
            names = [n.strip() for n in rest.split(",") if n.strip()]
            if keyword == "input":
                inputs.extend(names)
            elif keyword == "output":
                outputs.extend(names)
            continue
        if keyword == "assign":
            alias = _ASSIGN_RE.match(stmt)
            if not alias:
                raise ParseError(
                    "only simple alias assigns (assign a = b) are "
                    "supported",
                    lineno,
                )
            aliases[alias.group(1)] = alias.group(2)
            continue
        gate = _GATE_RE.match(stmt)
        if gate and gate.group(1) in _PRIMITIVES:
            node_type = _PRIMITIVES[gate.group(1)]
            ports = [p.strip() for p in gate.group(3).split(",") if p.strip()]
            if len(ports) < 2:
                raise ParseError(
                    f"gate {gate.group(1)} needs an output and at least "
                    "one input",
                    lineno,
                )
            target, fanins = ports[0], ports[1:]
            gates.append((lineno, node_type, target, fanins))
            continue
        if gate and gate.group(1) == "module":
            raise ParseError("nested modules are not supported", lineno)
        raise ParseError(f"unsupported statement: {stmt!r}", lineno)

    # Duplicate and dangling connections are diagnosed with the offending
    # instance's line before any gate is built (instances may reference
    # signals produced further down the module).
    defined_at: Dict[str, int] = {}
    for pi in inputs:
        if pi in defined_at:
            raise ParseError(f"duplicate input {pi!r}")
        defined_at[pi] = 0
    for lineno, node_type, target, fanins in gates:
        if target in defined_at:
            raise ParseError(
                f"duplicate driver for {target!r} "
                f"(first driven at line {defined_at[target]})",
                lineno,
            )
        defined_at[target] = lineno
    for alias in aliases:
        if alias in defined_at:
            raise ParseError(f"duplicate driver for alias {alias!r}")
        defined_at[alias] = 0
    for lineno, node_type, target, fanins in gates:
        for fanin in fanins:
            if aliases.get(fanin, fanin) not in defined_at:
                raise ParseError(
                    f"gate {target!r} references undriven signal "
                    f"{fanin!r}",
                    lineno,
                )
    for alias, source in aliases.items():
        if aliases.get(source, source) not in defined_at:
            raise ParseError(
                f"assign {alias} = {source}: {source!r} is never driven"
            )
    for out in outputs:
        if out not in defined_at:
            raise ParseError(f"declared output {out!r} is never driven")

    for pi in inputs:
        circuit.add_input(pi)
    for lineno, node_type, target, fanins in gates:
        resolved = [aliases.get(f, f) for f in fanins]
        if node_type in (NodeType.NOT, NodeType.BUF) and len(resolved) != 1:
            raise ParseError(
                f"{_TOKEN_FOR[node_type]} takes exactly one input", lineno
            )
        circuit.add_gate(target, node_type, resolved)
    for alias, source in aliases.items():
        if alias not in circuit:
            circuit.add_gate(alias, NodeType.BUF, [aliases.get(source, source)])
    circuit.set_outputs(outputs)
    try:
        circuit.validate()
    except CircuitError as exc:  # structural problems, e.g. a cycle
        raise ParseError(str(exc)) from exc
    return circuit


def load(path: Union[str, Path]) -> Circuit:
    """Read a structural Verilog file from disk."""
    path = Path(path)
    return loads(path.read_text(), name=path.stem)


def dumps(circuit: Circuit) -> str:
    """Serialize to structural Verilog (round-trips with :func:`loads`).

    MUX and constant nodes have no Verilog primitive; MUX is expanded to
    and/or/not gates and constants to self-feeding ties are not supported
    — both raise for now (the generators avoid them in Verilog flows).
    """
    ports = circuit.inputs + circuit.outputs
    lines = [f"module {circuit.name} ({', '.join(ports)});"]
    if circuit.inputs:
        lines.append(f"  input {', '.join(circuit.inputs)};")
    if circuit.outputs:
        lines.append(f"  output {', '.join(circuit.outputs)};")
    wires = [
        node.name
        for node in circuit.nodes()
        if node.type.is_gate and node.name not in circuit.outputs
    ]
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    counter = 0
    for node in circuit.nodes():
        if node.type is NodeType.INPUT:
            continue
        if node.type not in _TOKEN_FOR:
            raise ParseError(
                f"node {node.name!r}: {node.type.value} has no structural "
                "Verilog primitive"
            )
        counter += 1
        token = _TOKEN_FOR[node.type]
        ports = ", ".join([node.name] + list(node.fanins))
        lines.append(f"  {token} g{counter} ({ports});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def dump(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write a circuit to a structural Verilog file."""
    Path(path).write_text(dumps(circuit))
