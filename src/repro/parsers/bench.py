"""ISCAS-85/89 ``.bench`` netlist reader and writer.

The IWLS'02 benchmarks the paper evaluates on are distributed in this
format::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = NOT(G10)

:func:`loads` handles the combinational subset (``DFF`` raises there);
:func:`loads_sequential` additionally accepts ``q = DFF(d)`` lines and
returns a :class:`~repro.graph.sequential.SequentialCircuit`.  Both
directions round-trip via :func:`dumps` / :func:`dumps_sequential`.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Tuple, Union

from ..errors import CircuitError, ParseError
from ..graph.circuit import Circuit
from ..graph.node import NodeType, parse_node_type

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)]+?)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(r"^(\S+)\s*=\s*([A-Za-z01]+)\s*\(\s*(.*?)\s*\)$")

_TYPE_TOKENS = {
    NodeType.BUF: "BUF",
    NodeType.NOT: "NOT",
    NodeType.AND: "AND",
    NodeType.NAND: "NAND",
    NodeType.OR: "OR",
    NodeType.NOR: "NOR",
    NodeType.XOR: "XOR",
    NodeType.XNOR: "XNOR",
    NodeType.CONST0: "CONST0",
    NodeType.CONST1: "CONST1",
    NodeType.MUX: "MUX",
}


def loads(text: str, name: str = "bench") -> Circuit:
    """Parse combinational ``.bench`` source into a :class:`Circuit`.

    ``DFF`` lines raise; use :func:`loads_sequential` for netlists with
    state elements.
    """
    circuit, flops, _ = _parse(text, name, allow_dff=False)
    return circuit


def loads_sequential(text: str, name: str = "bench"):
    """Parse a (possibly sequential) ``.bench`` netlist.

    Flip-flops (``q = DFF(d)``) are cut: *q* becomes an INPUT node of
    the embedded combinational netlist (keeping its name), and the
    mapping ``q -> d`` is recorded in ``flops``.  Returns a
    :class:`~repro.graph.sequential.SequentialCircuit`.
    """
    from ..graph.sequential import SequentialCircuit

    circuit, flops, primary_inputs = _parse(text, name, allow_dff=True)
    return SequentialCircuit(
        name=name,
        combinational=circuit,
        flops=flops,
        primary_inputs=primary_inputs,
        primary_outputs=circuit.outputs,
    )


def _parse(text: str, name: str, allow_dff: bool):
    circuit = Circuit(name)
    outputs: List[str] = []
    primary_inputs: List[str] = []
    flops = {}
    defined_at: dict = {}  # signal -> line of its definition
    output_at: dict = {}  # declared output -> line of its OUTPUT(...)
    reference_lines: List[Tuple[int, str, str]] = []  # (line, gate, fanin)

    def define(signal: str, lineno: int) -> None:
        if signal in defined_at:
            raise ParseError(
                f"duplicate definition of {signal!r} "
                f"(first defined at line {defined_at[signal]})",
                lineno,
            )
        defined_at[signal] = lineno

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            kind, signal = decl.group(1).upper(), decl.group(2)
            if kind == "INPUT":
                define(signal, lineno)
                circuit.add_input(signal)
                primary_inputs.append(signal)
            else:
                outputs.append(signal)
                output_at.setdefault(signal, lineno)
            continue
        gate = _GATE_RE.match(line)
        if gate:
            target, type_token, args = gate.groups()
            fanins = [a.strip() for a in args.split(",") if a.strip()]
            if type_token.upper() == "DFF":
                if not allow_dff:
                    raise ParseError(
                        "sequential element DFF is not supported here; "
                        "use loads_sequential()",
                        lineno,
                    )
                if len(fanins) != 1:
                    raise ParseError("DFF takes exactly one input", lineno)
                # The flop output becomes a pseudo PI; record state map.
                define(target, lineno)
                circuit.add_input(target)
                flops[target] = fanins[0]
                reference_lines.append((lineno, target, fanins[0]))
                continue
            try:
                node_type = parse_node_type(type_token)
            except ValueError as exc:
                raise ParseError(str(exc), lineno) from exc
            define(target, lineno)
            if node_type.is_constant:
                circuit.add_constant(
                    target, 1 if node_type is NodeType.CONST1 else 0
                )
            else:
                circuit.add_gate(target, node_type, fanins)
                for fanin in fanins:
                    reference_lines.append((lineno, target, fanin))
            continue
        raise ParseError(f"unrecognized statement: {line!r}", lineno)

    # Forward references are legal in .bench, so dangling fanins are only
    # detectable once the whole file has been read.  Reporting them here
    # (with the referencing line) beats the bare KeyError a later
    # fanout/topology pass would produce from a silently corrupt circuit.
    for lineno, target, fanin in reference_lines:
        if fanin not in defined_at:
            raise ParseError(
                f"gate {target!r} references undefined signal {fanin!r}",
                lineno,
            )
    for signal in outputs:
        if signal not in defined_at:
            raise ParseError(
                f"declared output {signal!r} is never defined",
                output_at[signal],
            )
    circuit.set_outputs(outputs)
    try:
        circuit.validate()
    except CircuitError as exc:  # structural problems, e.g. a cycle
        raise ParseError(str(exc)) from exc
    return circuit, flops, primary_inputs


def load(path: Union[str, Path]) -> Circuit:
    """Read a combinational ``.bench`` file from disk."""
    path = Path(path)
    return loads(path.read_text(), name=path.stem)


def load_sequential(path: Union[str, Path]):
    """Read a (possibly sequential) ``.bench`` file from disk."""
    path = Path(path)
    return loads_sequential(path.read_text(), name=path.stem)


def dumps(circuit: Circuit) -> str:
    """Serialize a circuit to ``.bench`` text (round-trips with loads)."""
    lines: List[str] = [f"# {circuit.name}"]
    for pi in circuit.inputs:
        lines.append(f"INPUT({pi})")
    for out in circuit.outputs:
        lines.append(f"OUTPUT({out})")
    for node in circuit.nodes():
        if node.type is NodeType.INPUT:
            continue
        token = _TYPE_TOKENS[node.type]
        args = ", ".join(node.fanins)
        lines.append(f"{node.name} = {token}({args})")
    return "\n".join(lines) + "\n"


def dump(circuit: Circuit, path: Union[str, Path]) -> None:
    """Write a circuit to a ``.bench`` file."""
    Path(path).write_text(dumps(circuit))


def dumps_sequential(sequential) -> str:
    """Serialize a :class:`SequentialCircuit` to ``.bench`` text.

    Round-trips with :func:`loads_sequential`: flip-flops are re-emitted
    as ``q = DFF(d)`` lines and only the original primary inputs get
    ``INPUT`` declarations (flop outputs are INPUT nodes of the embedded
    combinational netlist, but the DFF line defines them in the file).
    """
    lines: List[str] = [f"# {sequential.name}"]
    for pi in sequential.primary_inputs:
        lines.append(f"INPUT({pi})")
    for out in sequential.primary_outputs:
        lines.append(f"OUTPUT({out})")
    for flop_out, data_in in sequential.flops.items():
        lines.append(f"{flop_out} = DFF({data_in})")
    for node in sequential.combinational.nodes():
        if node.type is NodeType.INPUT:
            continue
        token = _TYPE_TOKENS[node.type]
        args = ", ".join(node.fanins)
        lines.append(f"{node.name} = {token}({args})")
    return "\n".join(lines) + "\n"


def dump_sequential(sequential, path: Union[str, Path]) -> None:
    """Write a :class:`SequentialCircuit` to a ``.bench`` file."""
    Path(path).write_text(dumps_sequential(sequential))
