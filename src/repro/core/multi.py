"""Multiple-vertex dominators of fixed size k (Section 3 generalization).

The paper's Section 2 uses 3-vertex dominators to show that immediate
k-vertex dominators stop being unique for k > 2 (Figure 1: primary input
*b* has the two immediate 3-vertex dominators {e, l, m} and {h, j, k}).
This module implements the restriction scheme of [11] for arbitrary fixed
k — O(|V|^k) — so that both the paper's motivating example and the
uniqueness boundary are executable.

A set W of size k dominates *u* (Definition 1, l = 1) iff

1. removing W disconnects *u* from the root, and
2. every ``v ∈ W`` lies on some u→root path avoiding ``W - {v}``.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Set

from ..dominators.single import circuit_dominator_tree
from ..graph.indexed import IndexedGraph
from ..graph.transform import remove_vertex


def _reachable_avoiding(
    graph: IndexedGraph, start: int, banned: FrozenSet[int], forward: bool
) -> List[bool]:
    """Reachability from/to ``start`` with a banned vertex set."""
    mark = [False] * graph.n
    if start in banned:
        return mark
    mark[start] = True
    stack = [start]
    adj = graph.succ if forward else graph.pred
    while stack:
        v = stack.pop()
        for w in adj[v]:
            if not mark[w] and w not in banned:
                mark[w] = True
                stack.append(w)
    return mark


def is_multi_dominator(
    graph: IndexedGraph, u: int, vertices: Sequence[int]
) -> bool:
    """Definition 1 (l = 1) for a candidate set of any size."""
    w = frozenset(vertices)
    if len(w) != len(list(vertices)) or u in w or graph.root in w:
        return False
    # Condition 1: u must not reach the root once W is removed.
    if _reachable_avoiding(graph, u, w, forward=True)[graph.root]:
        return False
    # Condition 2: each vertex keeps a private path.
    for v in w:
        rest = w - {v}
        reach_u = _reachable_avoiding(graph, u, rest, forward=True)
        coreach = _reachable_avoiding(graph, graph.root, rest, forward=False)
        if not (reach_u[v] and coreach[v]):
            return False
    return True


def multi_vertex_dominators(
    graph: IndexedGraph, u: int, k: int, algorithm: str = "lt"
) -> Set[FrozenSet[int]]:
    """All k-vertex dominators of *u* via recursive restriction ([11]).

    The root is excluded uniformly for every k: ``k = 1`` returns the
    strict single dominators as singletons *without* the root, matching
    the ``k >= 2`` behaviour where condition 2 filters the root out (no
    path through a partner can avoid it).  This keeps
    :func:`immediate_multi_dominators` comparing the same universe of
    candidate vertices at every k.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if k == 1:
        tree = circuit_dominator_tree(graph, algorithm)
        if not tree.is_reachable(u):
            return set()
        return {
            frozenset((d,))
            for d in tree.strict_dominators(u)
            if d != graph.root
        }

    candidates: Set[FrozenSet[int]] = set()
    for v in range(graph.n):
        if v in (u, graph.root):
            continue
        sub, orig_of = remove_vertex(graph, v)
        local_of = {orig: i for i, orig in enumerate(orig_of)}
        local_u = local_of.get(u)
        if local_u is None:
            continue  # u is dominated by v alone; no irredundant set uses v
        for smaller in multi_vertex_dominators(sub, local_u, k - 1, algorithm):
            lifted = frozenset(orig_of[x] for x in smaller)
            if v not in lifted:
                candidates.add(lifted | {v})

    return {
        w
        for w in candidates
        if len(w) == k and is_multi_dominator(graph, u, tuple(w))
    }


def _set_dominates_vertex(
    graph: IndexedGraph, w: FrozenSet[int], x: int
) -> bool:
    """Does the set W cover every x→root path (condition 1 only)?"""
    if x in w:
        return True
    return not _reachable_avoiding(graph, x, w, forward=True)[graph.root]


def immediate_multi_dominators(
    graph: IndexedGraph, u: int, k: int, algorithm: str = "lt"
) -> Set[FrozenSet[int]]:
    """All *immediate* k-vertex dominators of *u* (Definition 2).

    W is immediate iff no other k-vertex dominator W' of *u* has each of
    its vertices either dominated by W or inside W.  For k = 2, Theorem 1
    guarantees the result has at most one element — a property the test
    suite exercises; for k = 3 the paper's Figure 1 shows two.
    """
    dominators = multi_vertex_dominators(graph, u, k, algorithm)
    immediate: Set[FrozenSet[int]] = set()
    for w in dominators:
        dominated_elsewhere = False
        for other in dominators:
            if other == w:
                continue
            if all(
                x in w or _set_dominates_vertex(graph, w, x) for x in other
            ):
                dominated_elsewhere = True
                break
        if not dominated_elsewhere:
            immediate.add(w)
    return immediate
