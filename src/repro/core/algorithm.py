"""DOMINATORCHAIN — the paper's main algorithm (Figure 3).

The driver walks the single-dominator chain of the target *u* (outer
while-loop), and inside each search region repeatedly calls DOUBLEIDOM to
find the next immediate pair, expands it to the full ``{V_1k, V_2k}``
vectors (:mod:`repro.core.matching`), re-seeds the flow search with the
pair's last elements, and finally assembles the
:class:`~repro.core.chain.DominatorChain` with globally numbered indices.

:class:`ChainComputer` additionally caches per-region results: a search
region depends only on its entry vertex (a single dominator of *u*), not on
*u* itself, so when chains are computed for *all* primary inputs of a cone
(the paper's Table 1 workload) each region is expanded exactly once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..dominators import kernels as _kernels
from ..dominators.linear import LinearScratch, region_chain_pairs
from ..dominators.shared import (
    RegionMatcher,
    SharedConeIndex,
    validate_backend,
)
from ..dominators.single import circuit_dominator_tree
from ..dominators.tree import DominatorTree
from ..flow.vertex_cut import RegionCutSolver
from ..graph.indexed import IndexedGraph
from .chain import ChainPair, DominatorChain
from .double_idom import double_idom
from .matching import expand_pair
from ..graph.transform import region_between
from .region_cache import CacheStats, RegionCache, RegionPair
from .regions import SearchRegion


def _expand_region(
    region: SearchRegion,
    algorithm: str,
    backend: str = "legacy",
    scratch=None,
) -> List[RegionPair]:
    """All chain pairs inside one search region, in chain order."""
    if region.is_trivial:
        # Fewer than two interior vertices: no size-two cut can exist, so
        # the region contributes no pairs (common for consecutive chain
        # vertices joined by a direct edge).
        return []
    results: List[RegionPair] = []
    if backend == "linear":
        # One flow-of-two + residual-SCC pass yields every pair of the
        # region at once (repro.dominators.linear) — no per-pair
        # DOUBLEIDOM restarts, no per-element C − v idom chains.  The
        # caller's LinearScratch (if any) is reused across regions.
        for side1, side2, intervals in region_chain_pairs(
            region.graph, region.local_start, scratch
        ):
            results.append(
                (
                    [region.orig_of[x] for x in side1],
                    [region.orig_of[x] for x in side2],
                    {
                        region.orig_of[x]: interval
                        for x, interval in intervals.items()
                    },
                )
            )
        return results
    sources = [region.local_start]
    if backend == "shared":
        solver = RegionCutSolver(region.graph, limit=3)
        matcher = RegionMatcher(region.graph)
    else:
        solver = None
        matcher = None
    while True:
        if solver is not None:
            # One split network per region, reused across DOUBLEIDOM
            # calls; same deterministic source-nearest cut as double_idom.
            result = solver.min_cut(sources)
            immediate = (
                tuple(result.cut)
                if result.flow == 2 and result.cut is not None
                else None
            )
        else:
            immediate = double_idom(region.graph, sources)
        if immediate is None:
            break
        expanded = expand_pair(
            region.graph,
            immediate[0],
            immediate[1],
            algorithm,
            backend,
            matcher=matcher,
        )
        side1 = [region.orig_of[x] for x in expanded.side1]
        side2 = [region.orig_of[x] for x in expanded.side2]
        intervals = {
            region.orig_of[x]: interval
            for x, interval in expanded.intervals.items()
        }
        results.append((side1, side2, intervals))
        sources = [expanded.side1[-1], expanded.side2[-1]]
    return results


def _assemble(
    target: int, region_pair_lists: List[List[RegionPair]]
) -> DominatorChain:
    """Concatenate per-region pairs into one chain with global indices."""
    pairs: List[ChainPair] = []
    intervals: Dict[int, Tuple[int, int]] = {}
    offset = [0, 0]  # flattened length of each side so far (last_index)
    for region_pairs in region_pair_lists:
        for side1, side2, local_intervals in region_pairs:
            for v in side1:
                lo, hi = local_intervals[v]
                intervals[v] = (offset[1] + lo, offset[1] + hi)
            for v in side2:
                lo, hi = local_intervals[v]
                intervals[v] = (offset[0] + lo, offset[0] + hi)
            pairs.append(ChainPair(tuple(side1), tuple(side2)))
            offset[0] += len(side1)
            offset[1] += len(side2)
    return DominatorChain(target, pairs, intervals)


class ChainComputer:
    """Computes dominator chains for many targets of one cone.

    Parameters
    ----------
    graph:
        Single-output cone in signal orientation.
    algorithm:
        Single-dominator algorithm used internally (``"lt"``,
        ``"iterative"`` or ``"naive"``).
    cache_regions:
        Reuse expanded regions across targets.  A region is identified by
        its entry vertex; disabling the cache re-runs the flow search for
        every target exactly as a literal reading of Figure 3 would.
    region_cache:
        An external :class:`~repro.core.region_cache.RegionCache` to use
        instead of a private one.  This is the incremental-engine hook:
        the cache can outlive this computer (and the dominator tree it
        was built against), so expansions survive circuit edits until
        explicitly invalidated.  Ignored when ``cache_regions`` is false.
    metrics:
        Optional :class:`repro.service.metrics.MetricsRegistry` (any
        object with ``inc(name)``/``observe(name, value)``).  When set,
        every :meth:`chain` call observes its wall time under
        ``core.chain_seconds`` and counts ``core.chains_computed`` and
        ``core.region_expansions`` — the serving layer's view into the
        algorithmic hot path.
    backend:
        ``"shared"`` (default) runs region extraction, restricted-graph
        ``C − v`` chains and the split flow network as views over one
        per-version array index (:mod:`repro.dominators.shared`);
        ``"legacy"`` keeps the original per-call subgraph copies;
        ``"linear"`` extracts regions from the same shared index but
        replaces the per-pair max-flow and per-element restricted-idom
        walks with one linear pass per region
        (:mod:`repro.dominators.linear`).  All three produce identical
        chains (the differential oracle cross-checks them) — legacy
        exists as the reference implementation.
    shared_index:
        Set ``False`` to skip building the per-version
        :class:`~repro.dominators.shared.SharedConeIndex` and extract
        each region on demand (identical chains, no O(n + m) setup) —
        the mode the dynamic incremental engine runs in, where the
        graph version changes every flush.  Requires ``tree`` to be
        supplied for the shared/linear backends to stay O(1) to build.
    kernels:
        ``"python"`` (default) keeps every pass on the pure-python hot
        path; ``"numpy"`` switches the cone tree pass to the metered
        sweep and shared-backend regions at least
        :data:`repro.dominators.kernels.MIN_KERNEL_REGION` wide to the
        flat-array kernels (:mod:`repro.dominators.kernels`) — region
        extraction, min cut and matching vectors all vectorized.
        Chains are bit-identical either way; the differential oracle
        cross-checks them.  Requires the shared index (and numpy).
    prefilter:
        ``"none"`` (default) computes every chain; ``"biconn"`` runs
        Schmidt's chain-decomposition test
        (:func:`repro.analysis.biconnectivity.has_no_double_dominator`)
        on the cone once, and — when the undirected skeleton is a tree,
        which certifies that *no* vertex has a double dominator — skips
        the shared-index build entirely and answers every :meth:`chain`
        call with an empty chain in O(1).  Sound but one-sided: an
        uncertified cone is computed exactly as with ``"none"``, and
        certified answers are bit-identical to the computed ones (the
        differential oracle cross-checks this).
    """

    def __init__(
        self,
        graph: IndexedGraph,
        algorithm: str = "lt",
        cache_regions: bool = True,
        tree: Optional[DominatorTree] = None,
        region_cache: Optional[RegionCache] = None,
        metrics=None,
        backend: str = "shared",
        shared_index: bool = True,
        kernels: str = "python",
        prefilter: str = "none",
    ):
        from ..analysis.biconnectivity import (
            has_no_double_dominator,
            validate_prefilter,
        )

        self.graph = graph
        self.algorithm = algorithm
        self.cache_regions = cache_regions
        self.metrics = metrics
        self.backend = validate_backend(backend)
        self.kernels = _kernels.validate_kernels(kernels)
        self.prefilter = validate_prefilter(prefilter)
        #: True when the pre-filter certified the whole cone pair-free.
        self.certified_empty = (
            self.prefilter == "biconn" and has_no_double_dominator(graph)
        )
        if self.certified_empty and self.metrics is not None:
            self.metrics.inc("core.prefilter_certified")
        if kernels == "numpy":
            _kernels.require_numpy()
            if not shared_index or backend not in ("shared", "linear"):
                raise ValueError(
                    "kernels='numpy' needs the shared cone index "
                    "(shared_index=True and backend 'shared' or "
                    "'linear')"
                )
        # The linear backend reuses the shared index for region
        # extraction and the cone dominator tree; only the per-region
        # pair construction differs.  ``shared_index=False`` skips the
        # index and extracts regions per query with ``region_between``
        # instead: the index is an O(n + m) build keyed on the graph
        # version, which the dynamic incremental engine cannot afford
        # once per flush.  Both extractions assign region-local ids in
        # ascending original-id order, so chains stay bit-identical.
        self._index = (
            SharedConeIndex.for_graph(graph, algorithm, kernels)
            if shared_index
            and backend in ("shared", "linear")
            and not self.certified_empty
            else None
        )
        # One epoch-stamped scratch shared by every linear-backend
        # region expansion of this computer (grown to the largest
        # region, never cleared — see LinearScratch).
        self._scratch = LinearScratch() if backend == "linear" else None
        if tree is not None:
            self._tree: Optional[DominatorTree] = tree
        elif self._index is not None:
            self._tree = self._index.tree
        else:
            # Built on first access; a pre-filter-certified cone never
            # needs it, so the skip saves the whole O(n alpha) pass.
            self._tree = None
        self.region_cache: Optional[RegionCache] = (
            (region_cache if region_cache is not None else RegionCache())
            if cache_regions
            else None
        )

    @property
    def tree(self) -> DominatorTree:
        """The cone's dominator tree (built lazily when pre-filtered)."""
        if self._tree is None:
            self._tree = circuit_dominator_tree(self.graph, self.algorithm)
        return self._tree

    @property
    def cache_stats(self) -> CacheStats:
        """Hit/miss/invalidation counters of the region cache.

        With ``cache_regions=False`` a fresh all-zero record is returned.
        """
        if self.region_cache is None:
            return CacheStats()
        return self.region_cache.stats

    @property
    def _region_cache(self) -> Dict[int, List[RegionPair]]:
        """Legacy ``{start: pairs}`` view of the cache (read-only)."""
        if self.region_cache is None:
            return {}
        return self.region_cache.pairs_by_start()

    def chain(self, u: int) -> DominatorChain:
        """The dominator chain ``D(u)`` (empty for the root)."""
        if self.certified_empty:
            if self.metrics is not None:
                self.metrics.inc("core.chains_computed")
                self.metrics.inc("core.prefilter_skipped")
            return DominatorChain(u, [], {})
        if self.metrics is None:
            return self._chain(u)
        import time

        start = time.perf_counter()
        result = self._chain(u)
        self.metrics.observe("core.chain_seconds", time.perf_counter() - start)
        self.metrics.inc("core.chains_computed")
        return result

    def _chain(self, u: int) -> DominatorChain:
        chain_vertices = self.tree.chain(u)
        region_lists: List[List[RegionPair]] = []
        for start, sink in zip(chain_vertices, chain_vertices[1:]):
            if self.region_cache is not None:
                cached = self.region_cache.lookup(start, sink)
                if cached is not None:
                    region_lists.append(cached)
                    continue
            if (
                self.kernels == "numpy"
                and self.backend == "shared"
                and self._index is not None
            ):
                expanded = self._kernel_region(start, sink)
                if expanded is not None:
                    members, pairs = expanded
                    if self.metrics is not None:
                        self.metrics.inc("core.region_expansions")
                        self.metrics.inc("core.kernel_regions")
                    if self.region_cache is not None:
                        self.region_cache.store(start, sink, members, pairs)
                    region_lists.append(pairs)
                    continue
            if self._index is not None:
                view, orig_of, local_start = self._index.extract_region(
                    start, sink
                )
                region = SearchRegion(
                    start=start,
                    sink=sink,
                    graph=view,
                    orig_of=orig_of,
                    local_start=local_start,
                )
            else:
                sub, orig_of = region_between(self.graph, start, sink)
                local_of = {orig: i for i, orig in enumerate(orig_of)}
                region = SearchRegion(
                    start=start,
                    sink=sink,
                    graph=sub,
                    orig_of=orig_of,
                    local_start=local_of[start],
                )
            expanded = _expand_region(
                region, self.algorithm, self.backend, self._scratch
            )
            if self.metrics is not None:
                self.metrics.inc("core.region_expansions")
            if self.region_cache is not None:
                self.region_cache.store(start, sink, orig_of, expanded)
            region_lists.append(expanded)
        return _assemble(u, region_lists)

    def _kernel_region(self, start: int, sink: int):
        """Expand one region on the numpy kernels, or ``None`` to punt.

        The cheap pre-check uses the original-id window: ids are
        topological, so the region is confined to ``[start, sink]`` and
        a window below ``MIN_KERNEL_REGION`` cannot contain a region
        worth vectorizing — crucially, deciding this needs *no* kernel
        index, so cones whose chain regions are all narrow never build
        one.  Past it, the precise level-order window gates the
        expensive path, and a mean level width below
        ``MIN_KERNEL_LEVEL_WIDTH`` punts deep-and-narrow regions back
        to the interpreter (the bitset byte cap, by contrast, is the
        matcher's own concern — it degrades to its sweep engine, not
        to python).
        Returned pairs are in cone ids and bit-identical to the python
        expansion.
        """
        if sink - start + 1 < _kernels.MIN_KERNEL_REGION:
            return None
        index = self._index.kernel_index()
        window = index.window(start, sink)
        if window < _kernels.MIN_KERNEL_REGION:
            return None
        if _kernels.MIN_KERNEL_REGION and (
            window
            < _kernels.MIN_KERNEL_LEVEL_WIDTH * index.level_span(start, sink)
        ):
            # Deep and narrow: the level sweeps would pay one numpy
            # call per level for a handful of vertices each — the
            # interpreter path is faster on this shape.  Disabled
            # together with the size floor under
            # ``forced_region_threshold(0)`` so tests still force
            # kernel coverage on tiny regions.
            return None
        region = index.region(start, sink)
        if region is None:
            return None
        return region.members_sorted(), _kernels.kernel_expand_region(
            region, start
        )

    def chains_for_sources(self) -> Dict[int, DominatorChain]:
        """Chains of every primary input of the cone (Table 1 workload)."""
        return {u: self.chain(u) for u in self.graph.sources()}

    def invalidate(self, vertices) -> int:
        """Drop cached regions touching any of ``vertices``.

        Incremental-synthesis hook ("suitable for running in an
        incremental manner", Section 7): after a local rewrite confined
        to the given vertices, only the regions containing them need
        recomputation — every other cached region is still valid provided
        the single-dominator structure outside them is unchanged.  The
        caller is responsible for rebuilding the :class:`ChainComputer`
        (graph and tree) when the edit moves single dominators;
        :class:`repro.incremental.IncrementalEngine` automates both.

        Eviction tests the full region member set, so edits to interior
        region vertices that appear on no chain are caught too.

        Returns the number of evicted regions.
        """
        if self.region_cache is None:
            return 0
        return self.region_cache.invalidate_touching(vertices)


def dominator_chain(
    graph: IndexedGraph,
    u: int,
    algorithm: str = "lt",
    tree: Optional[DominatorTree] = None,
    backend: str = "shared",
    kernels: str = "python",
) -> DominatorChain:
    """Compute ``D(u)`` for a single target — the paper's entry point.

    Examples
    --------
    >>> from repro.circuits.figures import figure2_circuit
    >>> from repro.graph import IndexedGraph
    >>> g = IndexedGraph.from_circuit(figure2_circuit())
    >>> chain = dominator_chain(g, g.index_of("u"))
    >>> chain.dominates(g.index_of("d"), g.index_of("h"))
    True
    """
    return ChainComputer(
        graph, algorithm, tree=tree, backend=backend, kernels=kernels
    ).chain(u)
