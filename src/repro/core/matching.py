"""Pair expansion: UPDATECHAIN, FINDMATCHINGVECTOR and ADDVECTOR (Fig. 4).

Given the immediate pair ``{w1, w2}`` found by DOUBLEIDOM inside a search
region, these routines materialize the complete ``{V_1k, V_2k}`` chain
pair.  Elements are processed in position order, each processing step
computing the element's *matching vector* — the idom chain of its first
known partner in the region restricted by removing the element — and
merging it into the opposite side (append-only, with interval bookkeeping
exactly as prescribed for ADDVECTOR).

Processing elements in position order per side is what makes the "start
the walk at index ``min(v)``" rule sound: when a vertex *v* is first
appended during the processing of partner *y*, any earlier partner *z*
(smaller index) would already have been processed and would already have
appended *v* — so *y* is necessarily *v*'s minimum partner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..dominators.lengauer_tarjan import UNREACHABLE
from ..dominators.shared import matching_compute
from ..dominators.single import circuit_idoms
from ..errors import ChainConstructionError
from ..graph.indexed import IndexedGraph
from ..graph.transform import remove_vertex


@dataclass
class ExpandedPair:
    """A fully expanded ``{V_1k, V_2k}`` pair in region-local indices.

    ``intervals`` maps each vertex to its 1-based matching interval on the
    opposite side, local to this pair's vectors.
    """

    side1: List[int]
    side2: List[int]
    intervals: Dict[int, Tuple[int, int]]


def find_matching_vector(
    region: IndexedGraph,
    v: int,
    w_start: int,
    algorithm: str = "lt",
    backend: str = "legacy",
) -> List[int]:
    """FINDMATCHINGVECTOR(v, ...) — partners of *v* from ``w_start`` upward.

    Restricts the region to ``C - v`` (paths through *v* excluded), then
    returns ``[w_start, idom(w_start), idom(idom(w_start)), ...]`` up to
    but excluding the region's local root.  The paper's while-loop of
    repeated SINGLEIDOM calls collapses into one dominator-tree
    computation on the restricted region.

    With ``backend="shared"`` the restricted graph is never materialized:
    an exclude-capable dominator algorithm simply skips *v* during its
    DFS over the region's own arrays, which is equivalent to deleting it
    (idoms are unique, so which capable algorithm runs does not matter).
    """
    if backend == "shared":
        idoms = matching_compute(algorithm)(
            region.n,
            region.pred,
            region.root,
            pred=region.succ,
            exclude=v,
        )
        if idoms[w_start] == UNREACHABLE:
            raise ChainConstructionError(
                f"partner {w_start} vanished from the region after "
                f"removing {v}"
            )
        out: List[int] = []
        x = w_start
        while x != region.root:
            out.append(x)
            x = idoms[x]
            if x < 0:  # pragma: no cover - defensive (reachable w_start
                # implies its whole idom chain is reachable)
                raise ChainConstructionError(
                    f"vertex {w_start} cannot reach the region root "
                    f"without {v}"
                )
        return out
    sub, orig_of = remove_vertex(region, v)
    local_of = {orig: i for i, orig in enumerate(orig_of)}
    if w_start not in local_of:
        raise ChainConstructionError(
            f"partner {w_start} vanished from the region after removing {v}"
        )
    idoms = circuit_idoms(sub, algorithm)
    out = []
    x = local_of[w_start]
    while x != sub.root:
        out.append(orig_of[x])
        x = idoms[x]
        if x < 0:
            raise ChainConstructionError(
                f"vertex {w_start} cannot reach the region root without {v}"
            )
    return out


def expand_pair(
    region: IndexedGraph,
    w1: int,
    w2: int,
    algorithm: str = "lt",
    backend: str = "legacy",
    matcher=None,
) -> ExpandedPair:
    """Grow the immediate pair ``{w1, w2}`` into the full chain pair.

    Implements the inner ``while i <= |V1k| or j <= |V2k|`` loop of the
    main algorithm: alternately process not-yet-processed elements of both
    sides, each processing step merging the element's matching vector into
    the opposite side (ADDVECTOR semantics, append-only).

    ``matcher`` is an optional
    :class:`~repro.dominators.shared.RegionMatcher` bound to ``region``;
    when given, matching vectors come from its scratch-reusing SNCA
    instead of a fresh per-call computation (identical results — idoms
    are unique).
    """
    sides: Tuple[List[int], List[int]] = ([w1], [w2])
    intervals: Dict[int, Tuple[int, int]] = {w1: (1, 1), w2: (1, 1)}
    processed = [0, 0]  # per side, number of elements already expanded

    while processed[0] < len(sides[0]) or processed[1] < len(sides[1]):
        a = 0 if processed[0] < len(sides[0]) else 1
        b = 1 - a
        side_a, side_b = sides[a], sides[b]
        v = side_a[processed[a]]
        pos_v = processed[a] + 1  # 1-based index of v within its side
        processed[a] += 1

        lo = intervals[v][0]
        w_start = side_b[lo - 1]
        if matcher is not None:
            matching = matcher.matching_vector(v, w_start)
        else:
            matching = find_matching_vector(
                region, v, w_start, algorithm, backend
            )
        if matching[0] != w_start:
            raise ChainConstructionError(
                "matching vector does not start at the minimum partner"
            )

        for offset, w in enumerate(matching):
            pos_w = lo + offset
            if pos_w <= len(side_b):
                if side_b[pos_w - 1] != w:
                    raise ChainConstructionError(
                        f"matching vector of {v} conflicts with the "
                        f"existing order at position {pos_w} "
                        "(violates Definition 3 property 1)"
                    )
            elif pos_w == len(side_b) + 1:
                side_b.append(w)
            else:
                raise ChainConstructionError(
                    f"matching vector of {v} is not contiguous with "
                    f"side {b + 1}"
                )
            # ADDVECTOR interval rules: widen w's interval to include v.
            if w in intervals:
                lo_w, hi_w = intervals[w]
                intervals[w] = (min(lo_w, pos_v), max(hi_w, pos_v))
            else:
                intervals[w] = (pos_v, pos_v)
        intervals[v] = (lo, lo + len(matching) - 1)

    return ExpandedPair(
        side1=sides[0], side2=sides[1], intervals=intervals
    )
