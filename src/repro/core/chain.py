"""The dominator chain — the paper's central data structure (Definition 3).

A dominator chain ``D(u)`` is a vector of pairs ``{V_1j, V_2j}`` of vertex
vectors that represents *all* O(n²) double-vertex dominators of a vertex
*u* in O(n) space.  Three per-vertex attributes make pair-membership
look-up constant time (paper Section 4):

* ``flag(v) ∈ {1, 2}`` — which side of the chain *v* lies on,
* ``index(v)`` — 1-based position of *v* in the concatenation
  ``V_i1 · V_i2 · ... · V_im`` of its side,
* ``(min(v), max(v))`` — the index interval of *v*'s *matching vector*:
  exactly the vertices *w* on the opposite side for which ``{v, w}`` is a
  double-vertex dominator of *u*.

``{v1, v2}`` dominates *u*  ⇔  ``flag(v1) != flag(v2)`` and
``min(v1) <= index(v2) <= max(v1)`` — two dictionary probes and two
comparisons, independent of circuit size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ChainConstructionError


@dataclass(frozen=True)
class ChainPair:
    """One ``{V_1j, V_2j}`` element of a dominator chain.

    ``side1``/``side2`` hold vertex ids in chain order; the first elements
    of the two sides form the immediate (common) double-vertex dominator of
    the previous pair's last elements (Definition 3, property 2).
    """

    side1: Tuple[int, ...]
    side2: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.side1 or not self.side2:
            raise ChainConstructionError("chain pair vectors must be non-empty")

    @property
    def first(self) -> Tuple[int, int]:
        """The immediate double-vertex dominator this pair starts with."""
        return (self.side1[0], self.side2[0])

    @property
    def last(self) -> Tuple[int, int]:
        """The last elements — sources of the next pair's DOUBLEIDOM call."""
        return (self.side1[-1], self.side2[-1])

    def vertices(self) -> Iterator[int]:
        yield from self.side1
        yield from self.side2


@dataclass(frozen=True)
class _VertexInfo:
    """Lookup attributes of one chain vertex."""

    flag: int  # 1 or 2
    index: int  # 1-based position within the flattened side
    pair: int  # 0-based index of the ChainPair the vertex belongs to
    min_index: int  # first partner index on the opposite side
    max_index: int  # last partner index on the opposite side


class DominatorChain:
    """All double-vertex dominators of one target vertex.

    Instances are immutable; they are produced by
    :func:`repro.core.algorithm.dominator_chain` (or built manually for
    testing) from the list of pairs plus each vertex's matching interval.

    Parameters
    ----------
    target:
        The vertex *u* the chain describes.
    pairs:
        The ``{V_1j, V_2j}`` pairs in chain order (may be empty: vertices
        with no double-vertex dominator, e.g. the root, have empty chains).
    intervals:
        ``intervals[v] = (min, max)`` matching interval for every vertex
        appearing in ``pairs``, expressed in 1-based opposite-side indices.
    """

    def __init__(
        self,
        target: int,
        pairs: Sequence[ChainPair],
        intervals: Dict[int, Tuple[int, int]],
    ):
        self.target = target
        self.pairs: Tuple[ChainPair, ...] = tuple(pairs)
        self._info: Dict[int, _VertexInfo] = {}
        self._side: Tuple[List[int], List[int]] = ([], [])

        for pair_idx, pair in enumerate(self.pairs):
            for flag, vector in ((1, pair.side1), (2, pair.side2)):
                side_list = self._side[flag - 1]
                for v in vector:
                    if v in self._info:
                        raise ChainConstructionError(
                            f"vertex {v} appears twice in the chain "
                            "(violates Lemma 3)"
                        )
                    if v not in intervals:
                        raise ChainConstructionError(
                            f"vertex {v} has no matching interval"
                        )
                    lo, hi = intervals[v]
                    side_list.append(v)
                    self._info[v] = _VertexInfo(
                        flag=flag,
                        index=len(side_list),
                        pair=pair_idx,
                        min_index=lo,
                        max_index=hi,
                    )
        self._check_structure()

    # ------------------------------------------------------------------
    # structural invariants (graph-independent parts of Definition 3)
    # ------------------------------------------------------------------
    def _check_structure(self) -> None:
        side1, side2 = self._side
        for v, info in self._info.items():
            opposite = side2 if info.flag == 1 else side1
            if not (1 <= info.min_index <= info.max_index <= len(opposite)):
                raise ChainConstructionError(
                    f"vertex {v}: interval ({info.min_index}, "
                    f"{info.max_index}) out of bounds for opposite side of "
                    f"size {len(opposite)}"
                )
            # Partners must belong to the same pair (intervals never span
            # pair boundaries — property 2/3 of Definition 3).
            for w in (
                opposite[info.min_index - 1],
                opposite[info.max_index - 1],
            ):
                if self._info[w].pair != info.pair:
                    raise ChainConstructionError(
                        f"vertex {v}: matching interval leaves its pair"
                    )
        # Inverse consistency: v ~ w from side 1 iff w ~ v from side 2.
        for v in side1:
            for w in self.matching_vector(v):
                winfo = self._info[w]
                vinfo = self._info[v]
                if not (winfo.min_index <= vinfo.index <= winfo.max_index):
                    raise ChainConstructionError(
                        f"asymmetric matching: {v} pairs with {w} but not "
                        "vice versa"
                    )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __bool__(self) -> bool:
        return bool(self.pairs)

    def __len__(self) -> int:
        """Number of ``{V_1j, V_2j}`` pairs (the *m* of Definition 3)."""
        return len(self.pairs)

    @property
    def size(self) -> int:
        """Total number of stored vertices — the O(n) space bound."""
        return len(self._info)

    def side(self, flag: int) -> List[int]:
        """Flattened side vector ``<V_i1, ..., V_im>`` for ``flag`` i."""
        if flag not in (1, 2):
            raise ValueError("flag must be 1 or 2")
        return list(self._side[flag - 1])

    def vertices(self) -> List[int]:
        """All vertices appearing anywhere in the chain."""
        return list(self._info)

    def __contains__(self, v: object) -> bool:
        return v in self._info

    def flag(self, v: int) -> int:
        """Side flag of *v* (1 or 2); KeyError if *v* is not in the chain."""
        return self._info[v].flag

    def index(self, v: int) -> int:
        """1-based position of *v* within its side."""
        return self._info[v].index

    def interval(self, v: int) -> Tuple[int, int]:
        """``(min(v), max(v))`` — matching interval of *v*."""
        info = self._info[v]
        return (info.min_index, info.max_index)

    def immediate(self) -> Optional[Tuple[int, int]]:
        """The immediate double-vertex dominator of the target, if any.

        Theorem 1 guarantees uniqueness; it is the pair of first elements
        of ``V_11`` and ``V_21``.
        """
        if not self.pairs:
            return None
        return self.pairs[0].first

    def dominates(self, v1: int, v2: int) -> bool:
        """O(1) check whether ``{v1, v2}`` is a double-vertex dominator.

        Implements the two-step look-up from Section 4 verbatim: first the
        flags must differ, then ``index(v2)`` must fall inside the matching
        interval of ``v1``.
        """
        info1 = self._info.get(v1)
        info2 = self._info.get(v2)
        if info1 is None or info2 is None or info1.flag == info2.flag:
            return False
        return info1.min_index <= info2.index <= info1.max_index

    def matching_vector(self, v: int) -> List[int]:
        """All partners *w* of *v* (``{v, w}`` dominates the target).

        Returned in chain order — the order of Definition 3 property 1:
        if ``{v, w_r}`` dominates ``w_t`` then ``t < r``.
        """
        info = self._info[v]
        opposite = self._side[2 - info.flag]
        return opposite[info.min_index - 1 : info.max_index]

    def iter_dominator_pairs(self) -> Iterator[Tuple[int, int]]:
        """Enumerate every double-vertex dominator pair exactly once.

        Pairs are yielded as ``(side-1 vertex, side-2 vertex)`` in chain
        order; the count of generated pairs is :meth:`num_dominators`.
        """
        for v in self._side[0]:
            for w in self.matching_vector(v):
                yield (v, w)

    def num_dominators(self) -> int:
        """Total number of distinct double-vertex dominators of the target."""
        return sum(
            self._info[v].max_index - self._info[v].min_index + 1
            for v in self._side[0]
        )

    def pair_set(self) -> set:
        """All dominator pairs as a set of ``frozenset`` — for comparisons."""
        return {frozenset(p) for p in self.iter_dominator_pairs()}

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (inverse of :meth:`from_dict`)."""
        return {
            "target": self.target,
            "pairs": [
                {"side1": list(p.side1), "side2": list(p.side2)}
                for p in self.pairs
            ],
            "intervals": {
                str(v): list(self.interval(v)) for v in self._info
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DominatorChain":
        """Rebuild a chain from :meth:`to_dict` output (re-validated)."""
        pairs = [
            ChainPair(tuple(p["side1"]), tuple(p["side2"]))
            for p in data["pairs"]  # type: ignore[union-attr]
        ]
        intervals = {
            int(v): (iv[0], iv[1])
            for v, iv in data["intervals"].items()  # type: ignore[union-attr]
        }
        return cls(int(data["target"]), pairs, intervals)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    def format(self, name_of=None) -> str:
        """Human-readable rendering mirroring the paper's notation."""
        if name_of is None:
            name_of = str
        rendered = []
        for pair in self.pairs:
            s1 = ",".join(name_of(v) for v in pair.side1)
            s2 = ",".join(name_of(v) for v in pair.side2)
            rendered.append(f"{{<{s1}>, <{s2}>}}")
        return "<" + ", ".join(rendered) + ">"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DominatorChain(target={self.target}, pairs={len(self.pairs)}, "
            f"vertices={self.size}, dominators={self.num_dominators()})"
        )
