"""DOUBLEIDOM — immediate double-vertex dominator via max-flow (Section 5).

    "The immediate double-vertex dominator for a given set S is obtained
    by DoubleIDom(S, V, E, idom(v)) by computing the maximum flow between
    the multiple sources defined by S and the sink idom(v). [...] the
    maximal-volume min-cut of size two corresponds to the immediate
    double-vertex dominator for S.  If the size of the cut is larger than
    two, DOUBLEIDOM returns an empty set."

The *immediate* dominator is the min cut **nearest the sources** (no other
dominator lies between S and it — Definition 2); after max-flow it is read
off the residual graph: saturated split arcs whose in-copy is residually
reachable from the sources and whose out-copy is not.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..flow.vertex_cut import min_vertex_cut
from ..graph.indexed import IndexedGraph


def double_idom(
    graph: IndexedGraph,
    sources: Sequence[int],
    sink: Optional[int] = None,
) -> Optional[Tuple[int, int]]:
    """Immediate (common) double-vertex dominator of ``sources``.

    Parameters
    ----------
    graph:
        Search region (or whole cone) in signal orientation.
    sources:
        The set *S* — either ``{v}`` when entering a region or the last
        elements ``{v1, v2}`` of the previous chain pair.
    sink:
        Flow sink; defaults to ``graph.root``.  In the paper's algorithm
        this is ``idom(v)``, the single dominator closing the region.

    Returns
    -------
    tuple[int, int] | None
        The unique immediate pair (Theorem 1), or ``None`` when the
        minimum interior vertex cut is not exactly two (no double-vertex
        dominator exists between *S* and the sink).

    Notes
    -----
    Degenerate regions resolve deterministically: when several size-two
    cuts exist, :func:`~repro.flow.vertex_cut.min_vertex_cut` returns the
    unique cut *nearest the sources* (exactly Definition 2's immediate
    dominator), read off residual reachability rather than any iteration
    order — repeated runs on the same region always yield the same pair,
    in ascending vertex order.
    """
    target = graph.root if sink is None else sink
    result = min_vertex_cut(graph, sources, target, limit=3)
    if result.flow != 2 or result.cut is None:
        # flow >= 3: every separator needs at least three vertices;
        # flow <= 1: a single vertex separates S from the sink, so any
        # size-2 candidate would be redundant (Definition 1, condition 2).
        return None
    w1, w2 = result.cut
    return (w1, w2)
