"""The paper's contribution: dominator chains and the chain algorithm."""

from .algorithm import ChainComputer, dominator_chain
from .api import (
    DominatorCounts,
    NamedDominatorChain,
    all_pi_chains,
    chain_of,
    count_double_dominators,
    count_double_dominators_baseline,
    count_single_dominators,
    dominator_counts,
)
from .baseline import (
    baseline_double_dominators,
    baseline_double_dominators_of,
    baseline_pi_double_dominators,
)
from .bruteforce import (
    all_double_dominators,
    all_pi_double_dominators,
    is_double_dominator,
)
from .chain import ChainPair, DominatorChain
from .common import (
    common_chain,
    common_dominator_pairs,
    common_pairs,
    common_pairs_from_chains,
    immediate_common_dominator,
)
from .double_idom import double_idom
from .matching import ExpandedPair, expand_pair, find_matching_vector
from .region_cache import CacheStats, RegionCache, RegionEntry
from .multi import (
    immediate_multi_dominators,
    is_multi_dominator,
    multi_vertex_dominators,
)
from .regions import SearchRegion, search_regions

__all__ = [
    "CacheStats",
    "ChainComputer",
    "ChainPair",
    "DominatorChain",
    "DominatorCounts",
    "ExpandedPair",
    "NamedDominatorChain",
    "RegionCache",
    "RegionEntry",
    "SearchRegion",
    "all_double_dominators",
    "all_pi_chains",
    "all_pi_double_dominators",
    "baseline_double_dominators",
    "baseline_double_dominators_of",
    "baseline_pi_double_dominators",
    "chain_of",
    "common_chain",
    "common_dominator_pairs",
    "common_pairs",
    "immediate_common_dominator",
    "common_pairs_from_chains",
    "count_double_dominators",
    "count_double_dominators_baseline",
    "count_single_dominators",
    "dominator_chain",
    "dominator_counts",
    "double_idom",
    "expand_pair",
    "find_matching_vector",
    "immediate_multi_dominators",
    "is_double_dominator",
    "is_multi_dominator",
    "multi_vertex_dominators",
    "search_regions",
]
