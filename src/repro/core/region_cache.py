"""Persistent search-region cache with explicit invalidation.

:class:`~repro.core.algorithm.ChainComputer` historically kept a private
``dict`` mapping a region's entry vertex to its expanded chain pairs —
enough to share regions across targets of one cone, but blind across
circuit edits.  This module promotes that dict into a first-class
:class:`RegionCache`:

* entries remember the region's **sink** (``idom(start)`` at expansion
  time) and **member set** (every vertex on a start→sink path), which is
  exactly the information needed to decide, after an edit, whether the
  cached expansion is still valid;
* every lookup/store/eviction is counted in a :class:`CacheStats`
  record, so incremental workloads can report hit rates;
* the cache object can outlive any single :class:`ChainComputer` — the
  incremental engine (:mod:`repro.incremental`) hands one cache to a
  fresh computer after each dominator-tree rebuild and unaffected
  regions keep serving hits.

A cached expansion depends only on the induced subgraph of start→sink
paths (see ``core/regions.py``), so an entry stays valid as long as that
subgraph is untouched — the invalidation rules live in
:mod:`repro.incremental.invalidate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

#: One fully expanded pair in original indices with pair-local intervals
#: (re-exported by :mod:`repro.core.algorithm`).
RegionPair = Tuple[List[int], List[int], Dict[int, Tuple[int, int]]]


@dataclass
class CacheStats:
    """Counters of one region cache's lifetime.

    Attributes
    ----------
    hits / misses:
        Lookup outcomes.  A lookup whose entry exists but was stored for
        a different sink counts as a miss (and evicts the stale entry).
    stores:
        Entries written after a miss.
    invalidations:
        Entries dropped by explicit invalidation (edits), as opposed to
        being overwritten by a store.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never used)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"invalidations={self.invalidations} "
            f"hit_rate={self.hit_rate:.1%}"
        )


@dataclass(frozen=True)
class RegionEntry:
    """Cached expansion of one search region.

    ``members`` is the full vertex set of the region (the ``orig_of`` of
    :func:`repro.graph.transform.region_between`) — a superset of the
    vertices appearing in ``pairs``, required for sound invalidation: an
    edit touching *any* region vertex can change the pairs even if the
    touched vertex is on no chain.
    """

    start: int
    sink: int
    members: FrozenSet[int]
    pairs: Tuple[RegionPair, ...] = field(repr=False)


class RegionCache:
    """Mapping ``start -> RegionEntry`` with usage statistics.

    The cache is deliberately unbounded: one cone has at most one region
    per dominator-tree edge, so the entry count is O(n).
    """

    def __init__(self) -> None:
        self._entries: Dict[int, RegionEntry] = {}
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # core protocol used by ChainComputer
    # ------------------------------------------------------------------
    def lookup(self, start: int, sink: int) -> Optional[List[RegionPair]]:
        """Cached pairs of the region entered at ``start``, if valid.

        The stored sink must match the caller's current ``idom(start)``;
        a mismatch means the region boundary moved since the entry was
        stored, so the entry is dropped and the lookup misses.
        """
        entry = self._entries.get(start)
        if entry is not None and entry.sink == sink:
            self.stats.hits += 1
            return list(entry.pairs)
        if entry is not None:
            del self._entries[start]
            self.stats.invalidations += 1
        self.stats.misses += 1
        return None

    def store(
        self,
        start: int,
        sink: int,
        members: Iterable[int],
        pairs: List[RegionPair],
    ) -> None:
        self._entries[start] = RegionEntry(
            start=start,
            sink=sink,
            members=frozenset(members),
            pairs=tuple(pairs),
        )
        self.stats.stores += 1

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def evict(self, start: int) -> bool:
        """Drop the entry for ``start`` (returns whether one existed)."""
        if start in self._entries:
            del self._entries[start]
            self.stats.invalidations += 1
            return True
        return False

    def invalidate_touching(self, vertices) -> int:
        """Drop every entry whose region contains any of ``vertices``.

        This is the member-set version of the old
        ``ChainComputer.invalidate`` hook (which only inspected chain
        vertices, missing edits to interior region vertices).  Returns
        the number of evicted entries.
        """
        dirty = frozenset(vertices)
        if not dirty:
            return 0
        evicted = [
            start
            for start, entry in self._entries.items()
            if start in dirty or not dirty.isdisjoint(entry.members)
        ]
        for start in evicted:
            del self._entries[start]
        self.stats.invalidations += len(evicted)
        return len(evicted)

    def clear(self) -> int:
        """Drop everything (counted as invalidations)."""
        count = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += count
        return count

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, start: object) -> bool:
        return start in self._entries

    def entries(self) -> List[RegionEntry]:
        """Snapshot of the live entries (for invalidation passes)."""
        return list(self._entries.values())

    def entry_for(self, start: int) -> Optional[RegionEntry]:
        """Current entry for ``start`` without touching the statistics.

        Entries are immutable and replaced wholesale on store, so object
        identity of the result is a cheap validity token: as long as a
        dependent computation holds the same object, the region it was
        built from has been neither evicted nor re-expanded.
        """
        return self._entries.get(start)

    def pairs_by_start(self) -> Dict[int, List[RegionPair]]:
        """Legacy view: ``{start: pairs}`` as the old private dict held."""
        return {s: list(e.pairs) for s, e in self._entries.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RegionCache(entries={len(self._entries)}, {self.stats})"
