"""Brute-force double-vertex dominators — Definition 1 made executable.

``{v1, v2}`` is a double-vertex dominator of *u* iff

1. every path from *u* to *root* contains ``v1`` or ``v2``, and
2. for each ``vi`` there is a path from *u* to *root* through ``vi`` that
   avoids the other one (no redundancy).

This module checks the definition directly with reachability queries and
is the ground truth the property-based tests compare both the paper's
algorithm and the baseline [11] against.  It is O(n³)-ish and meant for
small graphs only.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence, Set

from ..graph.indexed import IndexedGraph


def _reaches_root_avoiding(
    graph: IndexedGraph, u: int, banned: Sequence[int]
) -> bool:
    """Is there a u→root path avoiding every vertex in ``banned``?"""
    banned_set = set(banned)
    if u in banned_set:
        return False
    if u == graph.root:
        return True
    seen = {u}
    stack = [u]
    while stack:
        v = stack.pop()
        for w in graph.succ[v]:
            if w == graph.root:
                return True
            if w not in seen and w not in banned_set:
                seen.add(w)
                stack.append(w)
    return graph.root == u


def pair_covers(graph: IndexedGraph, x: int, pair: Sequence[int]) -> bool:
    """Condition 1 of Definition 1 only: every x→root path meets ``pair``.

    The paper's Lemma 1/2 proofs establish domination in exactly this
    coverage sense (condition 2, the no-redundancy requirement, is
    relative to the *target* and does not transfer); the executable lemma
    tests therefore use this relation.  ``x`` inside the pair covers
    trivially.
    """
    if x in pair:
        return True
    return not _reaches_root_avoiding(graph, x, tuple(pair))


def is_double_dominator(
    graph: IndexedGraph, u: int, v1: int, v2: int
) -> bool:
    """Definition 1 for ``l = 1``, ``k = 2`` — literally.

    Condition 2 for ``v1`` decomposes as: a path u→v1 avoiding ``v2``
    exists *and* a path v1→root avoiding ``v2`` exists (their
    concatenation avoids ``v2`` because the graph is acyclic).
    """
    if len({u, v1, v2}) != 3:
        return False
    # Condition 1: removing both vertices must disconnect u from the root.
    if _reaches_root_avoiding(graph, u, (v1, v2)):
        return False
    # Condition 2, for each vertex of the pair.
    for a, b in ((v1, v2), (v2, v1)):
        reach_u = graph.reachable_from(u, exclude=b)
        coreach_root = graph.coreachable_to(graph.root, exclude=b)
        if not (reach_u[a] and coreach_root[a]):
            return False
    return True


def all_double_dominators(
    graph: IndexedGraph, u: int, candidates: Optional[Sequence[int]] = None
) -> Set[FrozenSet[int]]:
    """All double-vertex dominators of *u* as a set of frozen pairs.

    ``candidates`` restricts the vertices considered (defaults to every
    vertex except *u*); the root can never participate (no path through a
    partner may avoid it), so it is skipped up front.
    """
    if candidates is None:
        candidates = [v for v in range(graph.n) if v != u]
    pool = [v for v in candidates if v not in (u, graph.root)]

    # Precompute per-vertex restricted reachability for condition 2.
    reach_u = {b: graph.reachable_from(u, exclude=b) for b in pool}
    coreach = {
        b: graph.coreachable_to(graph.root, exclude=b) for b in pool
    }

    result: Set[FrozenSet[int]] = set()
    for i, v1 in enumerate(pool):
        for v2 in pool[i + 1 :]:
            # Condition 2 (cheap, precomputed) before condition 1 (BFS).
            if not (reach_u[v2][v1] and coreach[v2][v1]):
                continue
            if not (reach_u[v1][v2] and coreach[v1][v2]):
                continue
            if _reaches_root_avoiding(graph, u, (v1, v2)):
                continue
            result.add(frozenset((v1, v2)))
    return result


def all_pi_double_dominators(graph: IndexedGraph) -> Set[FrozenSet[int]]:
    """Union of double-vertex dominators over all primary inputs of a cone.

    This is the brute-force version of Table 1, Column 5 for one cone
    (common dominators counted once).
    """
    result: Set[FrozenSet[int]] = set()
    for u in graph.sources():
        result |= all_double_dominators(graph, u)
    return result
