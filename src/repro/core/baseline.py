"""The baseline algorithm [11] — double dominators by graph restriction.

Dubrova, Teslenko and Martinelli (ISCAS 2004) compute k-vertex dominators
"by iteratively restricting C with respect to one of its vertices v ∈ V.
The restriction is done by removing from V all vertices dominated by v,
S(v). Dominators of size k−1 are computed for the resulting restricted
graph ... Once k is reduced to 1, a single-vertex dominator algorithm is
used", for an overall O(|V|^k) bound.

For k = 2 this specializes to: ``{v, w}`` dominates *u* iff *w* strictly
dominates *u* in the restriction of *C* by *v* **and** *v* strictly
dominates *u* in the restriction of *C* by *w* (the mutual check encodes
condition 2 of Definition 1 — each vertex keeps a private path).  The
implementation therefore runs one Lengauer–Tarjan pass per candidate
vertex — |V| passes of O(e α(e, n)) each — which is exactly why the paper's
algorithm beats it by an order of magnitude.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..dominators.single import circuit_dominator_tree
from ..graph.indexed import IndexedGraph
from ..graph.transform import remove_vertex


def _restricted_strict_dominators(
    graph: IndexedGraph,
    v: int,
    targets: Sequence[int],
    algorithm: str,
) -> Dict[int, List[int]]:
    """Strict dominators of each target in the restriction of *C* by *v*.

    The restriction removes *v*; pruning vertices that no longer reach the
    root realizes the removal of the whole dominated set S(v), since a
    vertex dominated by *v* has no root-path avoiding *v*.  Targets absent
    from the restricted graph (i.e. dominated by *v*) are omitted.
    """
    sub, orig_of = remove_vertex(graph, v)
    local_of = {orig: i for i, orig in enumerate(orig_of)}
    tree = circuit_dominator_tree(sub, algorithm)
    result: Dict[int, List[int]] = {}
    for u in targets:
        local = local_of.get(u)
        if local is None or not tree.is_reachable(local):
            continue
        result[u] = [orig_of[x] for x in tree.strict_dominators(local)]
    return result


def baseline_double_dominators(
    graph: IndexedGraph,
    targets: Optional[Sequence[int]] = None,
    algorithm: str = "lt",
) -> Dict[int, Set[FrozenSet[int]]]:
    """All double-vertex dominators of each target, via algorithm [11].

    Parameters
    ----------
    graph:
        Single-output cone in signal orientation.
    targets:
        Vertices whose dominator pairs are wanted (default: the primary
        inputs, the paper's Table 1 workload).
    algorithm:
        Single-dominator algorithm for the restricted passes.

    Returns
    -------
    dict
        ``{u: {frozenset({v, w}), ...}}`` for every requested target.
    """
    if targets is None:
        targets = graph.sources()
    target_list = list(targets)

    # half[(u, v)] holds the strict dominators of u in C restricted by v.
    # A pair is confirmed when each vertex dominates u without the other.
    half: Dict[Tuple[int, int], Set[int]] = {}
    candidates = [v for v in range(graph.n) if v != graph.root]
    for v in candidates:
        wanted = [u for u in target_list if u != v]
        if not wanted:
            continue
        doms = _restricted_strict_dominators(graph, v, wanted, algorithm)
        for u, strict in doms.items():
            half[(u, v)] = {w for w in strict if w != graph.root}

    result: Dict[int, Set[FrozenSet[int]]] = {u: set() for u in target_list}
    for (u, v), partners in half.items():
        for w in partners:
            if v < w:  # count each unordered pair once
                if v in half.get((u, w), ()):
                    result[u].add(frozenset((v, w)))
    return result


def baseline_pi_double_dominators(
    graph: IndexedGraph, algorithm: str = "lt"
) -> Set[FrozenSet[int]]:
    """Union of pairs over all primary inputs (Table 1, Column 5, one cone)."""
    per_target = baseline_double_dominators(graph, algorithm=algorithm)
    union: Set[FrozenSet[int]] = set()
    for pairs in per_target.values():
        union |= pairs
    return union


def baseline_double_dominators_of(
    graph: IndexedGraph, u: int, algorithm: str = "lt"
) -> Set[FrozenSet[int]]:
    """Pairs of a single target — convenience wrapper."""
    return baseline_double_dominators(graph, [u], algorithm)[u]
