"""High-level, name-based API over circuits.

Everything in :mod:`repro.core` below this module speaks integer vertex
ids of a single-output :class:`~repro.graph.indexed.IndexedGraph`; this
module is the user-facing layer that speaks node *names* and multi-output
:class:`~repro.graph.circuit.Circuit` netlists, and implements the paper's
evaluation counters (Table 1, Columns 4 and 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..dominators.single import (
    circuit_dominator_tree,
    pi_dominator_vertices,
)
from ..graph.circuit import Circuit
from ..graph.indexed import IndexedGraph
from .algorithm import ChainComputer, dominator_chain
from .baseline import baseline_double_dominators
from .chain import DominatorChain


class NamedDominatorChain:
    """A dominator chain whose queries use node names.

    Thin adapter pairing a :class:`DominatorChain` with the cone it was
    computed on.
    """

    def __init__(self, chain: DominatorChain, graph: IndexedGraph):
        self.chain = chain
        self.graph = graph

    def dominates(self, name1: str, name2: str) -> bool:
        """O(1): is ``{name1, name2}`` a double-vertex dominator?"""
        return self.chain.dominates(
            self.graph.index_of(name1), self.graph.index_of(name2)
        )

    def immediate(self) -> Optional[Tuple[str, str]]:
        """The immediate double-vertex dominator, as names."""
        pair = self.chain.immediate()
        if pair is None:
            return None
        return (self.graph.name_of(pair[0]), self.graph.name_of(pair[1]))

    def pairs(self) -> List[Tuple[str, str]]:
        """Every dominator pair, as names, in chain order."""
        return [
            (self.graph.name_of(v), self.graph.name_of(w))
            for v, w in self.chain.iter_dominator_pairs()
        ]

    def matching_vector(self, name: str) -> List[str]:
        """All partners of ``name``, in chain order."""
        v = self.graph.index_of(name)
        return [self.graph.name_of(w) for w in self.chain.matching_vector(v)]

    def format(self) -> str:
        """Paper-style rendering, e.g. ``<{<a,e,h>, <b,c,d,g>}, ...>``."""
        return self.chain.format(self.graph.name_of)

    def __len__(self) -> int:
        return len(self.chain)


def chain_of(
    circuit: Circuit,
    node: str,
    output: Optional[str] = None,
    algorithm: str = "lt",
    backend: str = "shared",
) -> NamedDominatorChain:
    """Dominator chain of one node within one output cone.

    Examples
    --------
    >>> from repro.circuits.figures import figure2_circuit
    >>> chain_of(figure2_circuit(), "u").dominates("d", "h")
    True
    """
    graph = IndexedGraph.from_circuit(circuit, output)
    chain = dominator_chain(
        graph, graph.index_of(node), algorithm, backend=backend
    )
    return NamedDominatorChain(chain, graph)


@dataclass(frozen=True)
class DominatorCounts:
    """The evaluation counters of Table 1 for one circuit.

    ``single`` / ``double`` are summed over output cones; inside each cone
    dominators common to several primary inputs are counted once, exactly
    as the paper specifies.
    """

    single: int
    double: int


def count_single_dominators(circuit: Circuit, algorithm: str = "lt") -> int:
    """Table 1, Column 4: vertices dominating ≥1 PI, summed over outputs."""
    total = 0
    for out in circuit.outputs:
        graph = IndexedGraph.from_circuit(circuit, out)
        tree = circuit_dominator_tree(graph, algorithm)
        total += len(pi_dominator_vertices(tree, graph.sources()))
    return total


def count_double_dominators(
    circuit: Circuit,
    algorithm: str = "lt",
    cache_regions: bool = True,
    backend: str = "shared",
    kernels: str = "python",
) -> int:
    """Table 1, Column 5 with the paper's algorithm.

    For every output cone, computes the dominator chain of every primary
    input and counts the union of their dominator pairs.
    """
    total = 0
    for out in circuit.outputs:
        graph = IndexedGraph.from_circuit(circuit, out)
        computer = ChainComputer(
            graph,
            algorithm,
            cache_regions=cache_regions,
            backend=backend,
            kernels=kernels,
        )
        pairs: Set[FrozenSet[int]] = set()
        for u in graph.sources():
            pairs |= computer.chain(u).pair_set()
        total += len(pairs)
    return total


def count_double_dominators_baseline(
    circuit: Circuit, algorithm: str = "lt"
) -> int:
    """Table 1, Column 5 with the baseline algorithm [11]."""
    total = 0
    for out in circuit.outputs:
        graph = IndexedGraph.from_circuit(circuit, out)
        per_target = baseline_double_dominators(graph, algorithm=algorithm)
        pairs: Set[FrozenSet[int]] = set()
        for pair_set in per_target.values():
            pairs |= pair_set
        total += len(pairs)
    return total


def dominator_counts(
    circuit: Circuit, algorithm: str = "lt", backend: str = "shared"
) -> DominatorCounts:
    """Columns 4 and 5 of Table 1 for one circuit (new algorithm)."""
    return DominatorCounts(
        single=count_single_dominators(circuit, algorithm),
        double=count_double_dominators(circuit, algorithm, backend=backend),
    )


def all_pi_chains(
    circuit: Circuit,
    output: Optional[str] = None,
    algorithm: str = "lt",
    backend: str = "shared",
) -> Dict[str, NamedDominatorChain]:
    """Chains of every primary input of one cone, keyed by input name."""
    graph = IndexedGraph.from_circuit(circuit, output)
    computer = ChainComputer(graph, algorithm, backend=backend)
    return {
        graph.name_of(u): NamedDominatorChain(computer.chain(u), graph)
        for u in graph.sources()
    }
