"""Search-region decomposition along the single-dominator chain.

The outer while-loop of DOMINATORCHAIN "partitions the circuit graph into
regions using single-vertex dominators of u as cut points.  Double-vertex
dominators of u are searched within these regions."

Why no double-vertex dominator straddles a region boundary: let ``s`` be a
single dominator of *u* and suppose ``{a, b}`` dominates *u* with *a*
before ``s`` and *b* after.  In a DAG any u→s path concatenates with any
s→root path, so if some u→s path avoided *a* and some s→root path avoided
*b*, their concatenation would avoid the pair — hence either *a* dominates
every u→s path (making *a* a single dominator, so ``{a, b}`` is redundant
by condition 2) or *b* dominates every s→root path (same argument).  Both
contradict Definition 1, so each pair lies strictly inside one region.
The same concatenation argument shows that the pairs of *u* inside the
region entered at chain vertex ``v`` coincide with the pairs of ``v``
itself in that region — which is why the algorithm may restart its flow
search from ``S = {v}`` at every region boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from ..dominators.tree import DominatorTree
from ..graph.indexed import IndexedGraph
from ..graph.transform import region_between


@dataclass(frozen=True)
class SearchRegion:
    """One region of the dominator-chain search.

    Attributes
    ----------
    start:
        The region's entry — a vertex of the idom chain of the target
        (original graph index).
    sink:
        ``idom(start)`` — the region's exit (original graph index).
    graph:
        The induced subgraph of vertices on start→sink paths, rooted at
        the sink (local indices).
    orig_of:
        Maps local indices of ``graph`` back to original indices.
    local_start:
        Local index of ``start`` inside ``graph``.
    """

    start: int
    sink: int
    graph: IndexedGraph
    orig_of: List[int]
    local_start: int

    @property
    def local_sink(self) -> int:
        return self.graph.root

    @property
    def interior_size(self) -> int:
        """Number of region vertices other than ``start`` and ``sink``."""
        return self.graph.n - 2

    @property
    def is_trivial(self) -> bool:
        """True when the region cannot possibly contain a dominator pair.

        A pair is a size-two cut of *interior* vertices (neither the
        region's entry nor its sink may be part of it), so regions with
        fewer than two interior vertices — in particular the degenerate
        ``start → sink`` edge region, where ``start``'s immediate
        dominator is its direct successor — are decided without running
        the flow machinery at all.  This also keeps degenerate regions
        trivially deterministic.
        """
        return self.interior_size < 2


def search_regions(
    graph: IndexedGraph, u: int, tree: DominatorTree
) -> Iterator[SearchRegion]:
    """Yield the search regions of *u* in chain order (u upward to root).

    ``tree`` is the dominator tree of ``graph`` (paper orientation); the
    regions are delimited by consecutive elements of ``tree.chain(u)``.
    """
    chain = tree.chain(u)
    for start, sink in zip(chain, chain[1:]):
        sub, orig_of = region_between(graph, start, sink)
        local_of = {orig: i for i, orig in enumerate(orig_of)}
        yield SearchRegion(
            start=start,
            sink=sink,
            graph=sub,
            orig_of=orig_of,
            local_start=local_of[start],
        )
