"""Common double-vertex dominators of a *set* of vertices (Section 4 end).

Two equivalent routes, both from the paper:

* **Fake-vertex technique** — "We add a 'fake' vertex u as a predecessor
  of u1, u2, ..., uk.  Clearly, each {v1, v2} ∈ D(u) is a common dominator
  for the set ... as well."  :func:`common_chain` builds the augmented
  graph and returns a full :class:`DominatorChain`.

* **Chain intersection** — "Dominator chain D(u1, ..., uk) can be computed
  directly from the dominator chains of individual vertices D(ui) in
  O(k · min{|D(u1)|, ..., |D(uk)|}) time."  :func:`common_pairs_from_chains`
  walks the smallest chain once and checks each of its pairs against every
  other chain with the O(1) lookup — exactly the advertised bound.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import DominatorError
from ..graph.indexed import IndexedGraph
from ..graph.transform import merge_sources
from .algorithm import dominator_chain
from .chain import DominatorChain


def common_chain(
    graph: IndexedGraph, vertices: Sequence[int], algorithm: str = "lt"
) -> DominatorChain:
    """Dominator chain of a vertex set via the fake-vertex technique.

    The returned chain's vertices are indices of ``graph`` (the fake
    vertex never appears in its own chain), and its ``target`` is the
    fake vertex ``graph.n``.

    .. caution::
       This is the *raw* chain of the fake vertex.  A path starting at a
       query vertex trivially contains that vertex, so D(fake) may hold
       pairs that include one of the query vertices — pairs Definition 1
       excludes (the dominator set must be disjoint from the targets).
       Use :func:`common_dominator_pairs` / :func:`immediate_common_dominator`
       for the filtered, Definition-1-conformant results.
    """
    if not vertices:
        raise DominatorError("common_chain requires at least one vertex")
    if graph.root in vertices:
        raise DominatorError("the root has no dominators")
    unique = sorted(set(vertices))
    if len(unique) == 1:
        return dominator_chain(graph, unique[0], algorithm)
    augmented = merge_sources(graph, unique)
    fake = graph.n
    return dominator_chain(augmented, fake, algorithm)


def common_pairs_from_chains(
    chains: Sequence[DominatorChain],
) -> Set[FrozenSet[int]]:
    """Common dominator pairs by intersecting individual chains.

    Runs in O(k · |smallest chain|) pair-lookups, as claimed in the paper:
    every pair of the smallest chain is probed against the other chains'
    constant-time ``dominates`` check.
    """
    if not chains:
        raise DominatorError("need at least one chain to intersect")
    smallest = min(chains, key=lambda c: c.num_dominators())
    others: List[DominatorChain] = [c for c in chains if c is not smallest]
    result: Set[FrozenSet[int]] = set()
    for v, w in smallest.iter_dominator_pairs():
        if all(other.dominates(v, w) for other in others):
            result.add(frozenset((v, w)))
    return result


def common_dominator_pairs(
    graph: IndexedGraph, vertices: Sequence[int], algorithm: str = "lt"
) -> Set[FrozenSet[int]]:
    """All common double-vertex dominators of ``vertices`` (Definition 1).

    Fake-vertex chain, filtered: pairs intersecting the query set are
    dropped (the dominator set must be disjoint from the targets).
    """
    chain = common_chain(graph, vertices, algorithm)
    targets = set(vertices)
    return {p for p in chain.pair_set() if not (p & targets)}


#: Backwards-compatible alias.
common_pairs = common_dominator_pairs


def _set_dominates_vertex(
    graph: IndexedGraph, pair: FrozenSet[int], x: int
) -> bool:
    """Does removing ``pair`` cut every x→root path?"""
    if x in pair:
        return True
    seen = {x}
    stack = [x]
    while stack:
        v = stack.pop()
        if v == graph.root:
            return False
        for w in graph.succ[v]:
            if w not in seen and w not in pair:
                seen.add(w)
                stack.append(w)
    return True


def immediate_common_dominator(
    graph: IndexedGraph, vertices: Sequence[int], algorithm: str = "lt"
) -> Optional[Tuple[int, int]]:
    """The immediate common double-vertex dominator of a set (Def. 2).

    A pair W is immediate when no other common pair W' has each of its
    vertices inside W or dominated by W.  The paper extends Theorem 1 to
    common dominators, so the result is unique; a violation would signal
    a malformed input and raises.
    """
    pairs = common_dominator_pairs(graph, vertices, algorithm)
    immediates = []
    for w in pairs:
        disqualified = False
        for other in pairs:
            if other == w:
                continue
            if all(
                x in w or _set_dominates_vertex(graph, w, x) for x in other
            ):
                disqualified = True
                break
        if not disqualified:
            immediates.append(tuple(sorted(w)))
    if not immediates:
        return None
    if len(immediates) > 1:
        raise DominatorError(
            f"multiple immediate common dominators {immediates}; "
            "Theorem 1 (extended) rules this out for well-formed cones"
        )
    return immediates[0]
