"""Process-local metrics: counters, latency histograms, JSON snapshots.

The registry is deliberately dependency-free (no prometheus client) and
cheap enough to leave enabled everywhere: a counter increment is one
dict lookup plus an integer add under a lock.  Components accept an
optional :class:`MetricsRegistry`; passing ``None`` keeps the hot path
untouched.

Naming convention: dotted ``component.metric`` names, e.g.
``executor.jobs_completed``, ``artifacts.hits``, ``core.chain_seconds``.
Histograms use fixed upper-bound buckets (seconds) like Prometheus
classic histograms, so snapshots diff/aggregate across processes by
plain addition — the executor merges worker-side snapshots into the
parent registry this way (:meth:`MetricsRegistry.merge_snapshot`).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default latency buckets in seconds — spans one fast chain lookup
#: (~10 µs) to a stuck multi-second region expansion.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
)


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Histogram:
    """A fixed-bucket histogram of observations (seconds by convention).

    ``buckets`` are inclusive upper bounds; an implicit ``+inf`` bucket
    catches the tail.  ``bucket_counts[i]`` is the number of
    observations ``<= buckets[i]`` — *non*-cumulative per bucket, unlike
    Prometheus wire format, because plain per-bucket counts add cleanly
    when merging worker snapshots.
    """

    __slots__ = ("name", "buckets", "_counts", "_sum", "_count", "_max", "_lock")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets) or not buckets:
            raise ValueError(f"histogram {name}: buckets must be sorted, non-empty")
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self._counts = [0] * (len(self.buckets) + 1)
        self._sum = 0.0
        self._count = 0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile estimated by linear interpolation inside buckets.

        The rank ``q * count`` is located in the per-bucket counts and
        mapped to a value by interpolating between the bucket's lower
        and upper bound (Prometheus ``histogram_quantile`` style), so
        p50/p99 latencies come out as smooth seconds instead of bucket
        edges.  The first bucket interpolates up from 0.  The last
        *non-empty* bucket (overflow included) caps its upper bound at
        the maximum observation ever seen, so ``quantile(1.0)`` returns
        exactly that maximum — not the bucket's nominal bound, which no
        observation may have reached — and the overflow bucket never
        reports ``inf`` for real data.  ``quantile(0.0)`` returns the
        lower bound of the first non-empty bucket.  Returns ``0.0``
        when the histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if not self._count:
                return 0.0
            rank = q * self._count
            running = 0
            last_nonempty = max(i for i, c in enumerate(self._counts) if c)
            for idx, count in enumerate(self._counts):
                if not count:
                    continue
                if running + count >= rank:
                    lo = self.buckets[idx - 1] if idx > 0 else 0.0
                    hi = (
                        self.buckets[idx]
                        if idx < len(self.buckets)
                        else self._max
                    )
                    if idx == last_nonempty:
                        # No observation exceeds _max, so ranks at the
                        # top of this bucket must map to _max, not to a
                        # nominal bound nothing reached (off-by-one at
                        # q=1).  The outer max() keeps hi >= lo when
                        # every resident equals the lower bound.
                        hi = max(min(hi, self._max), lo)
                    fraction = (rank - running) / count
                    return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
                running += count
        return self._max  # pragma: no cover - defensive

    def as_dict(self) -> Dict[str, object]:
        with self._lock:
            counts = list(self._counts)
            total, total_sum, seen_max = self._count, self._sum, self._max
        return {
            "count": total,
            "sum": round(total_sum, 9),
            "max": round(seen_max, 9),
            "mean": round(total_sum / total, 9) if total else 0.0,
            "buckets": {
                **{f"le_{b:g}": c for b, c in zip(self.buckets, counts)},
                "le_inf": counts[-1],
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, n={self._count}, mean={self.mean:.6f})"


class MetricsRegistry:
    """Named counters and histograms behind one snapshot/export surface.

    Metrics are created on first use (``registry.counter("x").inc()``)
    so components never need registration boilerplate; asking for an
    existing name with a conflicting kind raises.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # creation / access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            if name in self._histograms:
                raise ValueError(f"{name!r} is already a histogram")
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            if name in self._counters:
                raise ValueError(f"{name!r} is already a counter")
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, buckets)
            return self._histograms[name]

    def inc(self, name: str, amount: int = 1) -> None:
        """Shorthand: ``registry.counter(name).inc(amount)``."""
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Shorthand: ``registry.histogram(name).observe(value)``."""
        self.histogram(name).observe(value)

    def timer(self, name: str) -> "_Timer":
        """Context manager observing the block's wall time into ``name``."""
        return _Timer(self.histogram(name))

    def histograms(self) -> Dict[str, Histogram]:
        """Copy of the live histogram table (name -> Histogram)."""
        with self._lock:
            return dict(self._histograms)

    # ------------------------------------------------------------------
    # snapshot / export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable dump of every metric, sorted by name."""
        with self._lock:
            counters = dict(self._counters)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "histograms": {
                name: histograms[name].as_dict() for name in sorted(histograms)
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, object]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add; histogram bucket counts/sums add bucket-by-bucket.
        Bucket schemas are aligned on merge: every incoming bucket is
        re-binned into the smallest local bucket whose bound covers it,
        and incoming buckets beyond the local range (including the
        incoming overflow bucket) fold into the local overflow bucket.
        Exact when the schemas match — the worker→parent use case — and
        conservative (observations may shift one bucket coarser, never
        finer) when a worker was built with extra or different buckets.
        """
        for name, value in snapshot.get("counters", {}).items():  # type: ignore[union-attr]
            self.counter(name).inc(int(value))
        for name, data in snapshot.get("histograms", {}).items():  # type: ignore[union-attr]
            hist = self.histogram(name)
            incoming = data["buckets"]
            with hist._lock:
                for key, raw in incoming.items():
                    count = int(raw)
                    if not count:
                        continue
                    idx = len(hist.buckets)  # overflow by default
                    if key != "le_inf":
                        try:
                            bound = float(key[3:])
                        except ValueError:
                            pass  # unparseable key: keep it, as overflow
                        else:
                            idx = bisect_left(hist.buckets, bound)
                    hist._counts[idx] += count
                hist._count += int(data["count"])
                hist._sum += float(data["sum"])
                hist._max = max(hist._max, float(data.get("max", 0.0)))

    def export_json(self, path: str, indent: int = 2) -> None:
        """Write :meth:`snapshot` to ``path`` as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=indent, sort_keys=True)
            handle.write("\n")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"histograms={len(self._histograms)})"
        )


class _Timer:
    """Context manager recording elapsed wall time into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._start: Optional[float] = None

    def __enter__(self) -> "_Timer":
        import time

        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        import time

        assert self._start is not None
        self._histogram.observe(time.perf_counter() - self._start)
