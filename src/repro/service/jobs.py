"""Request deduplication and batching for the query service.

A :class:`ChainRequest` names one dominator-chain subproblem: a circuit
(by canonical fingerprint), one output cone, and optionally one target
vertex (``None`` = every primary input of the cone — the Table-1
workload).  Requests arrive from many callers and frequently repeat:
``serve-batch`` inputs routinely ask for overlapping targets, and a
sweep re-run after an unrelated edit re-asks for every cone.

:class:`JobQueue` collapses that stream in two steps:

* **dedup** — identical ``(circuit, output, target)`` requests beyond
  the first are recorded but not re-enqueued; every duplicate's
  ``request_id`` still receives the shared answer,
* **batching** — surviving requests for the same ``(circuit, output)``
  merge into one :class:`Batch`, because the region cache inside
  :class:`~repro.core.algorithm.ChainComputer` makes computing a cone's
  targets together nearly as cheap as computing one.  A pending
  all-targets request absorbs every single-target request for its cone.

The queue is synchronous and in-memory by design: the executor drains
it batch-by-batch, and the artifact store provides cross-process reuse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .hashing import stable_request_key


@dataclass(frozen=True)
class ChainRequest:
    """One dominator-chain query.

    ``target=None`` asks for the chains of every primary input of the
    cone.  ``request_id`` is an opaque caller token echoed back in
    responses; it does not participate in deduplication.
    """

    circuit_key: str
    output: str
    target: Optional[str] = None
    request_id: Optional[str] = None

    @property
    def dedup_key(self) -> str:
        return stable_request_key(self.circuit_key, self.output, self.target)


@dataclass
class Batch:
    """Merged work unit: one output cone, the union of requested targets.

    ``targets is None`` means "all primary inputs" — chosen whenever any
    member request asked for everything.  ``request_ids`` preserves the
    arrival order of every caller (duplicates included) so responses can
    be fanned back out.
    """

    circuit_key: str
    output: str
    targets: Optional[Tuple[str, ...]]
    request_ids: List[str] = field(default_factory=list)

    @property
    def all_targets(self) -> bool:
        return self.targets is None


@dataclass
class QueueStats:
    """Lifetime counters of one queue."""

    submitted: int = 0
    deduplicated: int = 0
    batches: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "submitted": self.submitted,
            "deduplicated": self.deduplicated,
            "batches": self.batches,
        }


class JobQueue:
    """Collects :class:`ChainRequest` records and drains merged batches."""

    def __init__(self) -> None:
        self._seen: Dict[str, ChainRequest] = {}
        self._order: List[ChainRequest] = []
        self.stats = QueueStats()

    def submit(self, request: ChainRequest) -> bool:
        """Add one request; returns ``False`` when it was a duplicate."""
        self.stats.submitted += 1
        key = request.dedup_key
        fresh = key not in self._seen
        if fresh:
            self._seen[key] = request
        self._order.append(request)
        if not fresh:
            self.stats.deduplicated += 1
        return fresh

    def submit_all(self, requests) -> int:
        """Submit many requests; returns how many were new."""
        return sum(1 for r in requests if self.submit(r))

    def __len__(self) -> int:
        """Number of distinct pending subproblems."""
        return len(self._seen)

    def drain(self) -> List[Batch]:
        """Merge pending requests into per-cone batches and reset.

        Batches come out in first-arrival order of their cone, targets
        sorted for determinism.  A cone with any all-targets request
        yields a single all-targets batch.
        """
        batches: Dict[Tuple[str, str], Batch] = {}
        order: List[Tuple[str, str]] = []
        for request in self._order:
            cone = (request.circuit_key, request.output)
            batch = batches.get(cone)
            if batch is None:
                batch = Batch(
                    circuit_key=request.circuit_key,
                    output=request.output,
                    targets=(),
                )
                batches[cone] = batch
                order.append(cone)
            if request.request_id is not None:
                batch.request_ids.append(request.request_id)
            if request.target is None:
                batch.targets = None
            elif batch.targets is not None:
                if request.target not in batch.targets:
                    batch.targets = tuple(
                        sorted({*batch.targets, request.target})
                    )
        self._seen.clear()
        self._order.clear()
        drained = [batches[cone] for cone in order]
        self.stats.batches += len(drained)
        return drained

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"JobQueue(pending={len(self._seen)}, "
            f"submitted={self.stats.submitted}, "
            f"deduplicated={self.stats.deduplicated})"
        )
