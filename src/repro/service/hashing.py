"""Canonical circuit hashing — the key space of the serving layer.

Two circuits that describe the same netlist must map to the same key no
matter how their nodes were inserted, so the fingerprint is computed
over a *canonical form*: nodes sorted by name, fanins in declared order
(fanin order is semantic — MUX — so it is part of the identity), plus
the input and output lists.  The hash deliberately ignores the
circuit's display ``name``: renaming a benchmark does not invalidate
its artifacts.

``cone_fingerprint`` narrows the identity to one output cone, so edits
confined to another cone of the same netlist do not invalidate this
cone's artifacts.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Optional

from ..graph.circuit import Circuit


def _feed(hasher: "hashlib._Hash", parts: Iterable[str]) -> None:
    for part in parts:
        hasher.update(part.encode("utf-8"))
        hasher.update(b"\x00")


def circuit_fingerprint(circuit: Circuit) -> str:
    """Hex digest identifying the full netlist (structure, not name)."""
    hasher = hashlib.sha256()
    _feed(hasher, ("inputs", *circuit.inputs))
    _feed(hasher, ("outputs", *circuit.outputs))
    for name in sorted(iter(circuit)):
        node = circuit.node(name)
        _feed(hasher, ("node", name, node.type.value, *node.fanins))
    return hasher.hexdigest()


def cone_fingerprint(circuit: Circuit, output: str) -> str:
    """Hex digest of one output cone: the transitive fanin of ``output``.

    Only the nodes that can reach ``output`` contribute, so the digest
    is stable under edits elsewhere in the netlist.
    """
    members = set()
    stack = [output]
    while stack:
        name = stack.pop()
        if name in members:
            continue
        members.add(name)
        stack.extend(circuit.node(name).fanins)
    hasher = hashlib.sha256()
    _feed(hasher, ("cone", output))
    for name in sorted(members):
        node = circuit.node(name)
        _feed(hasher, ("node", name, node.type.value, *node.fanins))
    return hasher.hexdigest()


def safe_key(text: str, keep: int = 24) -> str:
    """Filesystem-safe token for an arbitrary signal/output name.

    A readable sanitized prefix plus a short digest suffix: collisions
    between distinct names are practically impossible while the file
    name stays greppable.
    """
    cleaned = "".join(
        ch if ch.isalnum() or ch in "._-" else "_" for ch in text
    )[:keep]
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]
    return f"{cleaned}-{digest}" if cleaned else digest


def fingerprint_version(fingerprint: str, version: int) -> str:
    """Composite cache tag ``<fingerprint>@v<version>`` used in metadata."""
    return f"{fingerprint}@v{version}"


def short(fingerprint: str, length: int = 12) -> str:
    """Abbreviated fingerprint for logs and reports."""
    return fingerprint[:length]


def stable_request_key(
    circuit_key: str, output: str, target: Optional[str]
) -> str:
    """Deduplication key of one chain request (None target = all PIs)."""
    return f"{circuit_key}/{output}/{target if target is not None else '*'}"
