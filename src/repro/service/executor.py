"""The :class:`ParallelExecutor` — worker-pool dominator-chain sweeps.

Each output cone of a circuit is an independent single-root DAG, so the
Table-1 workload parallelises across cones with zero shared state.  The
executor fans per-cone DOMINATORCHAIN jobs across a
:mod:`multiprocessing` pool:

* **chunked dispatch** — cones are grouped into chunks that share one
  pickled copy of their circuit, amortising serialisation over the
  chunk (a circuit with 100 outputs ships once, not 100 times);
* **per-chunk timeouts** — a chunk that exceeds its deadline is
  abandoned in the pool and recomputed in-process, so one pathological
  cone cannot wedge a sweep;
* **graceful fallback** — ``jobs <= 1``, a platform without working
  ``multiprocessing`` primitives, or a pool-level failure all degrade
  to plain in-process execution with identical results;
* **determinism** — results are collected in submission order and the
  per-cone chain dictionaries are bit-identical to what a sequential
  :class:`~repro.core.algorithm.ChainComputer` produces (the property
  suite asserts this pair-for-pair and vector-for-vector).

Workers run their own :class:`~repro.service.metrics.MetricsRegistry`
and return its snapshot with each chunk; the parent folds the snapshots
into its registry, so ``core.chain_seconds`` observed inside workers is
visible in the final export.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.biconnectivity import validate_prefilter
from ..core.algorithm import ChainComputer
from ..dominators.kernels import validate_kernels
from ..dominators.shared import cone_graph, validate_backend
from ..graph.circuit import Circuit
from ..graph.indexed import IndexedGraph
from .artifacts import ArtifactStore
from .hashing import circuit_fingerprint
from .jobs import Batch
from .metrics import MetricsRegistry

#: One dispatched cone job: output name plus explicit targets (None =
#: every primary input of the cone).
ConeJob = Tuple[str, Optional[Tuple[str, ...]]]


def sequential_cone_chains(
    circuit: Circuit,
    output: str,
    targets: Optional[Sequence[str]] = None,
    metrics: Optional[MetricsRegistry] = None,
    backend: str = "shared",
    kernels: str = "python",
    prefilter: str = "none",
) -> Dict[str, Dict[str, object]]:
    """Chains of one output cone, serialized — the unit of all execution.

    This single code path backs the worker processes, the in-process
    fallback, and the sequential reference in tests, which is what makes
    "parallel == sequential" hold by construction.

    With ``backend="shared"`` the cone itself comes out of the circuit's
    :class:`~repro.dominators.shared.SharedCircuitIndex`, so a sweep over
    *k* outputs converts the string-keyed netlist to int adjacency once
    instead of *k* times.

    ``prefilter="biconn"`` lets the :class:`ChainComputer` certify
    tree-skeleton cones empty before any region work; the answers are
    bit-identical to the computed ones (the filter is sound), so the
    setting does not enter artifact-store keys.
    """
    if backend == "shared":
        graph = cone_graph(circuit, output)
    else:
        graph = IndexedGraph.from_circuit(circuit, output)
    computer = ChainComputer(
        graph,
        metrics=metrics,
        backend=backend,
        kernels=kernels,
        prefilter=prefilter,
    )
    if targets is None:
        indices = graph.sources()
    else:
        indices = [graph.index_of(t) for t in targets]
    chains: Dict[str, Dict[str, object]] = {}
    for u in indices:
        name = graph.name_of(u)
        chains[name if name is not None else str(u)] = (
            computer.chain(u).to_dict()
        )
    return chains


def pairs_in_chain_dict(chain_dict: Dict[str, object]) -> int:
    """Number of dominator pairs encoded by one serialized chain."""
    intervals = chain_dict["intervals"]
    total = 0
    for pair in chain_dict["pairs"]:  # type: ignore[union-attr]
        for v in pair["side1"]:
            lo, hi = intervals[str(v)]  # type: ignore[index]
            total += hi - lo + 1
    return total


def _process_chunk(payload):
    """Worker entry: compute every cone job of one chunk.

    ``payload`` is ``(circuit, cone_jobs, backend[, kernels[, prefilter]])``
    — the trailing slots may be omitted by older callers — where the
    circuit slot is either a pickled :class:`Circuit` or a
    :class:`~repro.daemon.shm.CircuitRef` into a published
    shared-memory segment (resolved through the worker-local attach
    cache, so repeated chunks for one circuit version decode it once).
    The return value is
    ``([(output, chains, wall_seconds), ...], metrics_snapshot)``.
    """
    circuit, cone_jobs, backend, *rest = payload
    kernels = rest[0] if rest else "python"
    prefilter = rest[1] if len(rest) > 1 else "none"
    registry = MetricsRegistry()
    if not isinstance(circuit, Circuit):
        from ..daemon.shm import attach_circuit

        circuit = attach_circuit(circuit)
        registry.inc("executor.shm_attaches")
    results = []
    for output, targets in cone_jobs:
        start = time.perf_counter()
        chains = sequential_cone_chains(
            circuit,
            output,
            targets,
            metrics=registry,
            backend=backend,
            kernels=kernels,
            prefilter=prefilter,
        )
        wall = time.perf_counter() - start
        registry.observe("executor.job_seconds", wall)
        results.append((output, chains, wall))
    return results, registry.snapshot()


def _chunk_entry(payload):
    """Stable pool target that defers to the current ``_process_chunk``.

    The indirection lets tests substitute the chunk body (slow/failing
    workers) via plain module monkeypatching under the fork start
    method.
    """
    return _process_chunk(payload)


@dataclass
class ExecutorConfig:
    """Tuning knobs of one executor.

    Attributes
    ----------
    jobs:
        Worker process count; ``1`` means in-process execution.
        Zero or negative counts are rejected (``ValueError``).
    timeout:
        Per-cone time budget in seconds; a chunk's deadline is
        ``timeout * len(chunk)``.  ``None`` disables timeouts;
        negative budgets are rejected (``ValueError``).
    chunk_size:
        Cones per dispatched chunk; ``None`` picks
        ``ceil(n_cones / (4 * jobs))`` so each worker sees ~4 chunks
        (good balance between pickling overhead and tail latency).
    start_method:
        ``multiprocessing`` start method; ``None`` prefers ``fork``
        where available (cheap on Linux) and falls back to the platform
        default.
    backend:
        Chain-construction backend used by every cone job
        (``"shared"`` default, ``"legacy"`` for the reference path).
    kernels:
        Hot-path implementation selector forwarded to every
        :class:`~repro.core.algorithm.ChainComputer`: ``"python"``
        (default) or ``"numpy"`` (flat-array kernels from
        :mod:`repro.dominators.kernels`; identical chains).  Part of
        the artifact-store key — cached sweeps never mix kernels.
    shared_circuits:
        Publish each circuit to a :mod:`multiprocessing.shared_memory`
        segment once (via :class:`repro.daemon.shm.SharedCircuitPool`)
        and ship workers a tiny ref per chunk instead of pickling the
        netlist into every task payload.  Falls back to pickled
        dispatch when shared memory is unavailable.  Call
        :meth:`ParallelExecutor.close` (or use the executor as a
        context manager) to unlink the segments.
    prefilter:
        ``"none"`` (default) or ``"biconn"`` — the Schmidt
        chain-decomposition pre-filter
        (:mod:`repro.analysis.biconnectivity`) forwarded to every cone
        job; certified cones answer empty chains without region work.
        Results are bit-identical either way, so the artifact-store
        keys are unaffected.
    """

    jobs: int = 1
    timeout: Optional[float] = None
    chunk_size: Optional[int] = None
    start_method: Optional[str] = None
    backend: str = "shared"
    shared_circuits: bool = False
    kernels: str = "python"
    prefilter: str = "none"

    def __post_init__(self) -> None:
        validate_backend(self.backend)
        validate_kernels(self.kernels)
        validate_prefilter(self.prefilter)
        if self.jobs <= 0:
            raise ValueError(
                f"jobs must be a positive integer, got {self.jobs}"
            )
        if self.timeout is not None and self.timeout < 0:
            raise ValueError(
                f"timeout must be non-negative, got {self.timeout}"
            )
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise ValueError(
                f"chunk_size must be a positive integer, got {self.chunk_size}"
            )


@dataclass
class ConeResult:
    """Chains of one cone plus how they were obtained."""

    output: str
    chains: Dict[str, Dict[str, object]]
    wall: float
    source: str  # "parallel" | "inprocess" | "artifact"

    @property
    def num_pairs(self) -> int:
        return sum(pairs_in_chain_dict(c) for c in self.chains.values())


@dataclass
class CircuitSweep:
    """Per-circuit roll-up of one sweep."""

    name: str
    circuit_key: str
    cones: int
    chains: int
    pairs: int
    wall: float
    artifact_hits: int


@dataclass
class SweepReport:
    """Everything a sweep produced, ready for rendering/JSON."""

    circuits: List[CircuitSweep] = field(default_factory=list)
    jobs: int = 1
    total_wall: float = 0.0

    @property
    def total_pairs(self) -> int:
        return sum(c.pairs for c in self.circuits)

    def as_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "total_wall": self.total_wall,
            "total_pairs": self.total_pairs,
            "circuits": [
                {
                    "name": c.name,
                    "circuit": c.circuit_key,
                    "cones": c.cones,
                    "chains": c.chains,
                    "pairs": c.pairs,
                    "wall": c.wall,
                    "artifact_hits": c.artifact_hits,
                }
                for c in self.circuits
            ],
        }


class ParallelExecutor:
    """Fans per-cone dominator-chain jobs across a process pool.

    Parameters
    ----------
    config:
        Pool size, timeouts, chunking (see :class:`ExecutorConfig`).
    metrics:
        Registry receiving ``executor.*`` counters, worker-side
        ``core.*`` observations, and (through the store) ``artifacts.*``.
    store:
        Optional :class:`~repro.service.artifacts.ArtifactStore`;
        when present, cones already stored under the circuit's current
        version are served from disk and fresh results are persisted.
    """

    def __init__(
        self,
        config: Optional[ExecutorConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        store: Optional[ArtifactStore] = None,
    ) -> None:
        self.config = config or ExecutorConfig()
        self.metrics = metrics or MetricsRegistry()
        self.store = store
        self._shm_pool = None

    def close(self) -> None:
        """Unlink any shared-memory segments this executor published."""
        if self._shm_pool is not None:
            self._shm_pool.close()
            self._shm_pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _shared_payload(self, circuit: Circuit):
        """The circuit slot of chunk payloads: a shm ref, or the circuit.

        Publishing happens once per circuit version; any shared-memory
        failure degrades to pickled dispatch (counted, never fatal).
        """
        if not self.config.shared_circuits:
            return circuit
        from ..daemon.shm import SharedCircuitPool, SharedMemoryUnavailable

        try:
            if self._shm_pool is None:
                self._shm_pool = SharedCircuitPool(self.metrics)
            return self._shm_pool.publish(
                circuit, circuit_fingerprint(circuit)
            )
        except SharedMemoryUnavailable:
            self.metrics.inc("executor.shm_fallbacks")
            return circuit

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def sweep_circuit(
        self,
        circuit: Circuit,
        outputs: Optional[Sequence[str]] = None,
        circuit_key: Optional[str] = None,
        targets_by_output: Optional[Dict[str, Optional[Tuple[str, ...]]]] = None,
    ) -> List[ConeResult]:
        """Chains of every requested cone, in output order.

        ``targets_by_output`` restricts individual cones to explicit
        target lists (the batch-serving path); unlisted cones default to
        all primary inputs.
        """
        cone_names = list(outputs) if outputs is not None else circuit.outputs
        key = circuit_key or circuit_fingerprint(circuit)
        targets_by_output = targets_by_output or {}

        results: Dict[str, ConeResult] = {}
        pending: List[ConeJob] = []
        for output in cone_names:
            targets = targets_by_output.get(output)
            cached = None
            # Only all-target artifacts are stored/served: partial target
            # sets would poison later all-target reads.
            if self.store is not None and targets is None:
                cached = self.store.get(
                    key,
                    output,
                    self.config.backend,
                    self.config.kernels,
                )
            if cached is not None:
                results[output] = ConeResult(output, cached, 0.0, "artifact")
            else:
                pending.append((output, targets))
        self.metrics.inc("executor.jobs_submitted", len(pending))

        for output, chains, wall, source in self._execute(circuit, pending):
            results[output] = ConeResult(output, chains, wall, source)
            targets = targets_by_output.get(output)
            if self.store is not None and targets is None:
                self.store.put(
                    key,
                    output,
                    chains,
                    self.config.backend,
                    self.config.kernels,
                )
        self.metrics.inc("executor.jobs_completed", len(pending))
        return [results[output] for output in cone_names]

    def run_batches(
        self, circuits: Dict[str, Circuit], batches: Sequence[Batch]
    ) -> Dict[Tuple[str, str], ConeResult]:
        """Execute drained :class:`~repro.service.jobs.Batch` records.

        ``circuits`` maps circuit fingerprints to loaded netlists.
        Returns ``{(circuit_key, output): ConeResult}``.
        """
        by_circuit: Dict[str, List[Batch]] = {}
        for batch in batches:
            by_circuit.setdefault(batch.circuit_key, []).append(batch)
        out: Dict[Tuple[str, str], ConeResult] = {}
        for key, group in by_circuit.items():
            circuit = circuits[key]
            cone_results = self.sweep_circuit(
                circuit,
                outputs=[b.output for b in group],
                circuit_key=key,
                targets_by_output={b.output: b.targets for b in group},
            )
            for result in cone_results:
                out[(key, result.output)] = result
        return out

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _execute(self, circuit: Circuit, cone_jobs: List[ConeJob]):
        """Yield ``(output, chains, wall, source)`` in submission order."""
        if not cone_jobs:
            return
        if self.config.jobs <= 1 or len(cone_jobs) == 1:
            yield from self._run_inprocess(circuit, cone_jobs)
            return

        chunks = self._chunk(cone_jobs)
        try:
            context = self._context()
            pool = context.Pool(processes=min(self.config.jobs, len(chunks)))
        except (ImportError, OSError, ValueError):
            # No usable multiprocessing on this platform (e.g. missing
            # POSIX semaphores): serve everything in-process.
            self.metrics.inc("executor.pool_fallbacks")
            yield from self._run_inprocess(circuit, cone_jobs)
            return

        payload_circuit = self._shared_payload(circuit)
        try:
            handles = [
                pool.apply_async(
                    _chunk_entry,
                    (
                        (
                            payload_circuit,
                            chunk,
                            self.config.backend,
                            self.config.kernels,
                            self.config.prefilter,
                        ),
                    ),
                )
                for chunk in chunks
            ]
            self.metrics.inc("executor.chunks", len(chunks))
            for chunk, handle in zip(chunks, handles):
                deadline = (
                    self.config.timeout * len(chunk)
                    if self.config.timeout is not None
                    else None
                )
                try:
                    chunk_results, snapshot = handle.get(deadline)
                except multiprocessing.TimeoutError:
                    self.metrics.inc("executor.timeouts")
                    yield from self._run_inprocess(circuit, chunk)
                    continue
                except Exception:
                    self.metrics.inc("executor.failures")
                    yield from self._run_inprocess(circuit, chunk)
                    continue
                self.metrics.merge_snapshot(snapshot)
                self.metrics.inc("executor.jobs_parallel", len(chunk))
                for output, chains, wall in chunk_results:
                    yield output, chains, wall, "parallel"
        finally:
            pool.terminate()
            pool.join()

    def _run_inprocess(self, circuit: Circuit, cone_jobs: List[ConeJob]):
        for output, targets in cone_jobs:
            start = time.perf_counter()
            chains = sequential_cone_chains(
                circuit,
                output,
                targets,
                metrics=self.metrics,
                backend=self.config.backend,
                kernels=self.config.kernels,
                prefilter=self.config.prefilter,
            )
            wall = time.perf_counter() - start
            self.metrics.observe("executor.job_seconds", wall)
            self.metrics.inc("executor.jobs_inprocess")
            yield output, chains, wall, "inprocess"

    def _chunk(self, cone_jobs: List[ConeJob]) -> List[List[ConeJob]]:
        size = self.config.chunk_size
        if size is None:
            size = max(1, -(-len(cone_jobs) // (4 * self.config.jobs)))
        return [
            cone_jobs[i : i + size] for i in range(0, len(cone_jobs), size)
        ]

    def _context(self):
        method = self.config.start_method
        if method is not None:
            return multiprocessing.get_context(method)
        try:
            return multiprocessing.get_context("fork")
        except ValueError:
            return multiprocessing.get_context()


def sweep_suite(
    executor: ParallelExecutor,
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    verbose: bool = False,
) -> SweepReport:
    """Run the executor over the built-in Table-1 circuit suite."""
    import sys

    from ..circuits.suite import table1_suite

    suite = table1_suite()
    selected = list(names) if names else list(suite)
    report = SweepReport(jobs=executor.config.jobs)
    sweep_start = time.perf_counter()
    for name in selected:
        if verbose:
            print(f"  sweeping {name} ...", file=sys.stderr, flush=True)
        circuit = suite[name].circuit(scale)
        key = circuit_fingerprint(circuit)
        start = time.perf_counter()
        cone_results = executor.sweep_circuit(circuit, circuit_key=key)
        wall = time.perf_counter() - start
        report.circuits.append(
            CircuitSweep(
                name=name,
                circuit_key=key,
                cones=len(cone_results),
                chains=sum(len(r.chains) for r in cone_results),
                pairs=sum(r.num_pairs for r in cone_results),
                wall=wall,
                artifact_hits=sum(
                    1 for r in cone_results if r.source == "artifact"
                ),
            )
        )
    report.total_wall = time.perf_counter() - sweep_start
    return report


def sweep_sequential_suite(
    executor: ParallelExecutor,
    names: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    view: Tuple[str, int] = ("core", 0),
    verbose: bool = False,
) -> SweepReport:
    """Run the executor over the built-in sequential circuit suite.

    Each :class:`~repro.circuits.suite.SequentialEntry` is lowered to a
    plain netlist first: ``view=("core", 0)`` analyzes the flop-cut
    combinational core (one cone per primary output and per next-state
    function), ``view=("unroll", N)`` analyzes the ``N``-frame
    time-frame unrolling (per-frame primary outputs plus the final
    next-state cut).  Row names carry the view suffix so reports from
    different views never collide.
    """
    import sys

    from ..circuits.suite import sequential_suite
    from ..graph.sequential import extract_combinational_core, unrolled

    mode, frames = view
    if mode not in ("core", "unroll"):
        raise ValueError(f"unknown sequential view {mode!r}")
    suite = sequential_suite()
    selected = list(names) if names else list(suite)
    report = SweepReport(jobs=executor.config.jobs)
    sweep_start = time.perf_counter()
    for name in selected:
        label = name if mode == "core" else f"{name}:u{frames}"
        if verbose:
            print(f"  sweeping {label} ...", file=sys.stderr, flush=True)
        sequential = suite[name].sequential(scale)
        if mode == "core":
            circuit = extract_combinational_core(sequential)
        else:
            circuit = unrolled(sequential, frames)
        key = circuit_fingerprint(circuit)
        start = time.perf_counter()
        cone_results = executor.sweep_circuit(circuit, circuit_key=key)
        wall = time.perf_counter() - start
        report.circuits.append(
            CircuitSweep(
                name=label,
                circuit_key=key,
                cones=len(cone_results),
                chains=sum(len(r.chains) for r in cone_results),
                pairs=sum(r.num_pairs for r in cone_results),
                wall=wall,
                artifact_hits=sum(
                    1 for r in cone_results if r.source == "artifact"
                ),
            )
        )
    report.total_wall = time.perf_counter() - sweep_start
    return report
