"""On-disk artifact store for computed dominator chains.

Layout (under one root directory)::

    root/
      index.json                      # {"versions": {circuit_key: int}}
      <key[:2]>/<key>/v<version>/<backend>/<kernels>/<safe_output>.json

One artifact file holds every target chain of one output cone —
``{"targets": {target_name: chain.to_dict()}, "meta": {...}}`` — because
the sweep workload always computes a cone's chains together (the region
cache makes per-cone batching the natural unit).

Invalidation is *versioned*: :meth:`ArtifactStore.invalidate` bumps the
circuit's version counter in ``index.json``; artifacts written under
older versions become unreachable (and are garbage-collected lazily).
This mirrors the :class:`~repro.core.region_cache.RegionCache` contract
— entries survive until the structure they were computed from changes —
and is wired to the incremental edit machinery through
:meth:`listener_for`, which returns a callback suitable for
:meth:`repro.incremental.IncrementalEngine.add_edit_listener`.

Writes are atomic (tmp file + ``os.replace``) so a killed worker never
leaves a torn artifact behind.

The store is safe under **concurrent writers**: every in-memory index
mutation happens under one re-entrant thread lock, and cross-process
writers (a daemon plus a CLI sweep over the same root, or several
threads each holding their own store) are serialized by advisory file
locks — a global ``index.lock`` around every read-merge-write of
``index.json`` (saves merge the on-disk versions first, so one writer's
bump is never erased by another's stale snapshot) and a per-circuit
``locks/<key>.lock`` held across version bumps, stale-directory cleanup
and artifact writes, so a ``put`` can never race an ``invalidate``'s
``rmtree`` into a half-deleted directory.  On platforms without
``fcntl`` the file locks degrade to the thread lock alone.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Optional

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from ..dominators.kernels import validate_kernels
from ..dominators.shared import validate_backend
from .hashing import safe_key
from .metrics import MetricsRegistry

_INDEX = "index.json"
_INDEX_LOCK = "index.lock"
_LOCK_DIR = "locks"
#: Artifact schema version — bump when the on-disk layout changes.
#: v2: artifacts are additionally keyed by chain-construction backend
#: (one ``<backend>/`` path segment and a ``meta["backend"]`` field), so
#: differential runs never serve one backend's cached result to the
#: other.
#: v3: a ``<kernels>/`` path segment and ``meta["kernels"]`` field key
#: artifacts by hot-path implementation too — chains are bit-identical
#: across kernels, but a scaling comparison must never time a cache hit
#: produced by the other implementation.
FORMAT_VERSION = 3


class ArtifactStore:
    """Persistent chain artifacts keyed by circuit fingerprint + cone.

    Parameters
    ----------
    root:
        Directory to store artifacts under (created on demand).
    metrics:
        Optional registry; hits/misses/writes/invalidations are counted
        under ``artifacts.*``.
    """

    def __init__(
        self, root: str, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics
        self._versions: Dict[str, int] = {}
        self._lock = threading.RLock()
        self._load_index()

    # ------------------------------------------------------------------
    # locking
    # ------------------------------------------------------------------
    @contextmanager
    def _flocked(self, path: Path):
        """Advisory exclusive file lock (no-op where fcntl is missing)."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "a+b") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    @contextmanager
    def _circuit_locked(self, circuit_key: str):
        """Thread lock + per-circuit file lock, in that fixed order."""
        with self._lock:
            with self._flocked(
                self.root / _LOCK_DIR / f"{safe_key(circuit_key)}.lock"
            ):
                yield

    # ------------------------------------------------------------------
    # index handling
    # ------------------------------------------------------------------
    def _read_disk_versions(self) -> Dict[str, int]:
        path = self.root / _INDEX
        if not path.exists():
            return {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            # A torn index is recoverable: treat every circuit as v0 and
            # let the next write rebuild it.
            self._count("artifacts.index_resets")
            return {}
        versions = data.get("versions", {})
        if not isinstance(versions, dict):
            return {}
        return {str(k): int(v) for k, v in versions.items()}

    def _load_index(self) -> None:
        with self._lock:
            self._versions.update(self._read_disk_versions())

    def _merge_disk_versions(self) -> None:
        """Fold newer on-disk versions into memory (caller holds locks)."""
        for key, version in self._read_disk_versions().items():
            if version > self._versions.get(key, 0):
                self._versions[key] = version

    def _save_index(self) -> None:
        """Persist the version map, merging concurrent writers' bumps.

        The read-merge-write runs under the global index file lock, so a
        second store on the same root (another thread or process) can
        never erase this store's bumps with a stale snapshot — versions
        only move forward.
        """
        with self._lock:
            with self._flocked(self.root / _INDEX_LOCK):
                self._merge_disk_versions()
                path = self.root / _INDEX
                tmp = path.with_suffix(".json.tmp")
                with open(tmp, "w", encoding="utf-8") as handle:
                    json.dump(
                        {
                            "format": FORMAT_VERSION,
                            "versions": self._versions,
                        },
                        handle,
                        indent=2,
                        sort_keys=True,
                    )
                os.replace(tmp, path)

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    # ------------------------------------------------------------------
    # versions
    # ------------------------------------------------------------------
    def version(self, circuit_key: str) -> int:
        """Current version of a circuit's artifacts (0 = never bumped)."""
        with self._lock:
            return self._versions.get(circuit_key, 0)

    def invalidate(self, circuit_key: str) -> int:
        """Bump the circuit's version; all its prior artifacts go stale.

        The old version directories are removed eagerly (best-effort) so
        disk use stays bounded under edit-heavy workloads.  Returns the
        new version.

        Runs entirely under the circuit's lock: the bump starts from the
        merged on-disk version (so same-circuit invalidations through
        different stores strictly increment), and the stale-directory
        cleanup cannot race a concurrent :meth:`put` on this circuit
        into a half-deleted directory.
        """
        with self._circuit_locked(circuit_key):
            self._merge_disk_versions()
            new_version = self._versions.get(circuit_key, 0) + 1
            self._versions[circuit_key] = new_version
            self._save_index()
            self._count("artifacts.invalidations")
            circuit_dir = self._circuit_dir(circuit_key)
            if circuit_dir.exists():
                for entry in circuit_dir.iterdir():
                    if entry.is_dir() and entry.name != f"v{new_version}":
                        shutil.rmtree(entry, ignore_errors=True)
            return new_version

    def listener_for(self, circuit_key: str) -> Callable[[], None]:
        """Edit callback bumping this circuit's version on every call.

        Designed for
        :meth:`repro.incremental.IncrementalEngine.add_edit_listener`:
        once registered, any applied edit invalidates the edited
        circuit's on-disk artifacts.
        """

        def _on_edit() -> None:
            self.invalidate(circuit_key)

        return _on_edit

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _circuit_dir(self, circuit_key: str) -> Path:
        return self.root / circuit_key[:2] / circuit_key

    def _artifact_path(
        self,
        circuit_key: str,
        output: str,
        backend: str = "shared",
        kernels: str = "python",
    ) -> Path:
        version = self.version(circuit_key)
        return (
            self._circuit_dir(circuit_key)
            / f"v{version}"
            / validate_backend(backend)
            / validate_kernels(kernels)
            / f"{safe_key(output)}.json"
        )

    # ------------------------------------------------------------------
    # get / put
    # ------------------------------------------------------------------
    def get(
        self,
        circuit_key: str,
        output: str,
        backend: str = "shared",
        kernels: str = "python",
    ) -> Optional[Dict[str, Dict[str, object]]]:
        """Stored ``{target_name: chain_dict}`` for a cone, if current.

        Only artifacts written under the circuit's *current* version by
        the same backend and kernels are served; anything else is a
        miss.
        """
        path = self._artifact_path(circuit_key, output, backend, kernels)
        if not path.exists():
            self._count("artifacts.misses")
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            self._count("artifacts.read_errors")
            self._count("artifacts.misses")
            return None
        meta = data.get("meta", {})
        if (
            meta.get("format") != FORMAT_VERSION
            or meta.get("backend", "shared") != backend
            or meta.get("kernels", "python") != kernels
        ):
            self._count("artifacts.misses")
            return None
        self._count("artifacts.hits")
        return data["targets"]

    def put(
        self,
        circuit_key: str,
        output: str,
        targets: Dict[str, Dict[str, object]],
        backend: str = "shared",
        kernels: str = "python",
    ) -> Path:
        """Persist one cone's chains (atomic). Returns the file path.

        Holds the circuit's lock so the version read, the directory
        creation and the atomic rename are one unit with respect to a
        concurrent :meth:`invalidate` (whose cleanup would otherwise
        delete the directory between ``mkdir`` and ``os.replace``).
        """
        with self._circuit_locked(circuit_key):
            path = self._artifact_path(circuit_key, output, backend, kernels)
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = {
                "meta": {
                    "format": FORMAT_VERSION,
                    "circuit": circuit_key,
                    "output": output,
                    "version": self.version(circuit_key),
                    "backend": backend,
                    "kernels": kernels,
                },
                "targets": targets,
            }
            tmp = path.with_suffix(".json.tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        self._count("artifacts.writes")
        return path

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def hit_ratio(self) -> float:
        """Fraction of gets served from disk (0.0 without metrics)."""
        if self.metrics is None:
            return 0.0
        hits = self.metrics.counter("artifacts.hits").value
        misses = self.metrics.counter("artifacts.misses").value
        total = hits + misses
        return hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore(root={str(self.root)!r}, circuits={len(self._versions)})"
