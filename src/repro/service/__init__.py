"""``repro.service`` — the parallel dominator-query serving layer.

The paper's Table-1 workload (all double-vertex dominators of every
primary input of every output cone) is embarrassingly parallel across
cones: each cone is an independent single-root DAG.  This package turns
chain computation into a schedulable, observable workload:

* :mod:`~repro.service.metrics` — process-local counters and latency
  histograms with a JSON snapshot exporter,
* :mod:`~repro.service.hashing` — canonical circuit/cone hashing used as
  the cache and artifact key space,
* :mod:`~repro.service.artifacts` — an on-disk store of computed chains
  keyed by circuit hash + output cone, with versioned invalidation,
* :mod:`~repro.service.jobs` — request deduplication and batching,
* :mod:`~repro.service.executor` — the :class:`ParallelExecutor` worker
  pool with chunked dispatch, per-chunk timeouts and in-process
  fallback.

The CLI surface is ``python -m repro sweep`` (parallel suite sweep) and
``python -m repro serve-batch`` (JSON request/response batches); see
``docs/SERVICE.md`` for the architecture notes.
"""

from .artifacts import ArtifactStore
from .executor import (
    CircuitSweep,
    ConeResult,
    ExecutorConfig,
    ParallelExecutor,
    SweepReport,
    pairs_in_chain_dict,
    sequential_cone_chains,
    sweep_sequential_suite,
    sweep_suite,
)
from .hashing import circuit_fingerprint, cone_fingerprint
from .jobs import Batch, ChainRequest, JobQueue
from .metrics import MetricsRegistry, Counter, Histogram

__all__ = [
    "ArtifactStore",
    "Batch",
    "ChainRequest",
    "CircuitSweep",
    "ConeResult",
    "Counter",
    "ExecutorConfig",
    "Histogram",
    "JobQueue",
    "MetricsRegistry",
    "ParallelExecutor",
    "SweepReport",
    "circuit_fingerprint",
    "cone_fingerprint",
    "pairs_in_chain_dict",
    "sequential_cone_chains",
    "sweep_sequential_suite",
    "sweep_suite",
]
