"""Circuit-to-BDD construction and cut-point equivalence checking.

This is the executable version of the paper's "cut point selection in
equivalence checking" application (Section 1, reference [18] CLEVER): a
monolithic BDD of a whole cone can blow up, but a double-vertex cut
frontier {w1, w2} splits the proof — build the output's BDD over *two
fresh cut variables*, build the two cut nets' BDDs over the primary
inputs, and compose.  Because the frontier is a dominator cut, the
composition is complete (no path escapes it), and the peak BDD size is
bounded by the larger of the two halves rather than their product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.cutpoints import select_cut_frontiers
from ..errors import ReproError
from ..graph.circuit import Circuit
from ..graph.node import NodeType
from .manager import BDDManager


class CutpointError(ReproError):
    """Cut-point verification could not be set up."""


def build_net_bdds(
    circuit: Circuit,
    manager: BDDManager,
    var_order: Optional[Sequence[str]] = None,
    cut_vars: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """BDD of every net of ``circuit``.

    Parameters
    ----------
    var_order:
        Primary-input order (top of the BDD order first); defaults to
        declaration order.
    cut_vars:
        Optional ``{net_name: bdd_variable_level}``: those nets are not
        expanded — they become free variables (the cut-point trick).
    """
    order = list(var_order) if var_order is not None else circuit.inputs
    level_of = {name: i for i, name in enumerate(order)}
    cut_vars = cut_vars or {}
    bdds: Dict[str, int] = {}

    ops = {
        NodeType.BUF: lambda ins: ins[0],
        NodeType.NOT: lambda ins: manager.not_(ins[0]),
        NodeType.AND: lambda ins: manager.and_(*ins),
        NodeType.NAND: lambda ins: manager.nand(*ins),
        NodeType.OR: lambda ins: manager.or_(*ins),
        NodeType.NOR: lambda ins: manager.nor(*ins),
        NodeType.XOR: lambda ins: manager.xor(*ins),
        NodeType.XNOR: lambda ins: manager.xnor(*ins),
        NodeType.MUX: lambda ins: manager.mux(*ins),
    }

    for name in circuit.topological_order():
        if name in cut_vars:
            bdds[name] = manager.var(cut_vars[name])
            continue
        node = circuit.node(name)
        if node.type is NodeType.INPUT:
            if name not in level_of:
                raise CutpointError(
                    f"input {name!r} missing from the variable order"
                )
            bdds[name] = manager.var(level_of[name])
        elif node.type is NodeType.CONST0:
            bdds[name] = 0
        elif node.type is NodeType.CONST1:
            bdds[name] = 1
        else:
            bdds[name] = ops[node.type]([bdds[f] for f in node.fanins])
    return bdds


def output_bdd(
    circuit: Circuit,
    output: Optional[str] = None,
    manager: Optional[BDDManager] = None,
    var_order: Optional[Sequence[str]] = None,
) -> Tuple[BDDManager, int]:
    """Monolithic BDD of one output."""
    if output is None:
        if len(circuit.outputs) != 1:
            raise CutpointError("specify which output to build")
        output = circuit.outputs[0]
    manager = manager or BDDManager()
    bdds = build_net_bdds(circuit, manager, var_order)
    return manager, bdds[output]


def check_equivalence(
    circuit_a: Circuit,
    circuit_b: Circuit,
    outputs: Optional[Sequence[Tuple[str, str]]] = None,
) -> bool:
    """Formal equivalence of two circuits over the same inputs.

    ``outputs`` pairs the output names to compare (default: positional).
    """
    if set(circuit_a.inputs) != set(circuit_b.inputs):
        raise CutpointError("circuits have different input sets")
    if outputs is None:
        if len(circuit_a.outputs) != len(circuit_b.outputs):
            raise CutpointError("circuits have different output counts")
        outputs = list(zip(circuit_a.outputs, circuit_b.outputs))
    order = circuit_a.inputs
    manager = BDDManager()
    bdds_a = build_net_bdds(circuit_a, manager, order)
    bdds_b = build_net_bdds(circuit_b, manager, order)
    return all(bdds_a[oa] == bdds_b[ob] for oa, ob in outputs)


@dataclass(frozen=True)
class PartitionedProof:
    """Outcome of a cut-partitioned output-BDD construction.

    ``peak_partitioned`` is the largest BDD built while working at the
    cut (output-over-cut-vars and each cut net over the PIs);
    ``monolithic_size`` the size of the flat output BDD.  ``composed``
    equals the monolithic BDD by construction — asserted during the
    proof — demonstrating the partition is lossless.
    """

    frontier: Tuple[str, str]
    peak_partitioned: int
    monolithic_size: int
    composed_matches: bool


def partitioned_output_bdd(
    circuit: Circuit,
    output: Optional[str] = None,
    frontier: Optional[Tuple[str, str]] = None,
) -> PartitionedProof:
    """Build one output's BDD through a double-vertex cut frontier.

    If ``frontier`` is omitted, the frontier nearest the output from
    :func:`repro.analysis.cutpoints.select_cut_frontiers` is used.
    """
    if output is None:
        if len(circuit.outputs) != 1:
            raise CutpointError("specify which output to build")
        output = circuit.outputs[0]
    if frontier is None:
        doubles = [
            f
            for f in select_cut_frontiers(circuit, output)
            if f.width == 2
        ]
        if not doubles:
            raise CutpointError(
                f"cone of {output!r} has no double-vertex cut frontier"
            )
        frontier = doubles[-1].nets  # nearest the output
    w1, w2 = frontier

    # The variable order covers every circuit input (build_net_bdds walks
    # the whole netlist, including nets outside this output's cone).
    order = circuit.inputs
    num_inputs = len(order)
    manager = BDDManager()

    # Half 1: the output over two fresh cut variables (+ any PI that
    # still reaches the output off-frontier; for a true common frontier
    # of all PIs there are none, but partial frontiers are allowed).
    cut_levels = {w1: num_inputs, w2: num_inputs + 1}
    upper = build_net_bdds(circuit, manager, order, cut_vars=cut_levels)
    # Half 2: the two cut nets over the PIs.
    lower = build_net_bdds(circuit, manager, order)
    peak = max(
        manager.size(upper[output]),
        manager.size(lower[w1]),
        manager.size(lower[w2]),
    )

    # Compose: substitute the cut functions back in.
    composed = manager.compose(upper[output], num_inputs, lower[w1])
    composed = manager.compose(composed, num_inputs + 1, lower[w2])
    monolithic = lower[output]
    return PartitionedProof(
        frontier=(w1, w2),
        peak_partitioned=peak,
        monolithic_size=manager.size(monolithic),
        composed_matches=composed == monolithic,
    )
