"""ROBDD engine and cut-point equivalence checking."""

from .circuit_bdd import (
    CutpointError,
    PartitionedProof,
    build_net_bdds,
    check_equivalence,
    output_bdd,
    partitioned_output_bdd,
)
from .manager import ONE, ZERO, BddError, BDDManager

__all__ = [
    "BDDManager",
    "BddError",
    "CutpointError",
    "ONE",
    "PartitionedProof",
    "ZERO",
    "build_net_bdds",
    "check_equivalence",
    "output_bdd",
    "partitioned_output_bdd",
]
