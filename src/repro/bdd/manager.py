"""A compact ROBDD manager.

Reduced ordered binary decision diagrams with a shared unique table and a
memoized ternary ITE operator — the classical data structure behind
combinational equivalence checking (the paper's Section 1 cites cut-point
selection for equivalence checking as a dominator application; the cut
points bound BDD growth, demonstrated in
:mod:`repro.bdd.circuit_bdd`).

Nodes are integers: ``0``/``1`` are the terminals; internal nodes carry
``(level, low, high)`` with strictly increasing levels toward the
terminals.  No complemented edges — clarity over constant factors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ReproError


class BddError(ReproError):
    """BDD capacity exceeded or inconsistent operands."""


ZERO = 0
ONE = 1


class BDDManager:
    """Shared-table ROBDD manager over numbered variables.

    Variables are identified by *level* (0 = top of the order).  All
    nodes from one manager may be freely combined; mixing managers is an
    error the operations cannot detect, so don't.

    Examples
    --------
    >>> m = BDDManager()
    >>> x, y = m.var(0), m.var(1)
    >>> f = m.and_(x, y)
    >>> m.evaluate(f, {0: 1, 1: 1})
    1
    >>> m.evaluate(f, {0: 1, 1: 0})
    0
    """

    def __init__(self, max_nodes: int = 2_000_000):
        self.max_nodes = max_nodes
        self._level: List[int] = [-1, -1]  # terminals
        self._low: List[int] = [-1, -1]
        self._high: List[int] = [-1, -1]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # node construction
    # ------------------------------------------------------------------
    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            if node > self.max_nodes:
                raise BddError(
                    f"BDD exceeded {self.max_nodes} nodes; raise max_nodes "
                    "or partition the problem (e.g. at dominator cuts)"
                )
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def var(self, level: int) -> int:
        """The single-variable function for ``level``."""
        if level < 0:
            raise BddError("variable levels must be non-negative")
        return self._mk(level, ZERO, ONE)

    def level_of(self, node: int) -> int:
        return self._level[node]

    @property
    def num_nodes(self) -> int:
        return len(self._level)

    # ------------------------------------------------------------------
    # core operator
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f AND g) OR (NOT f AND h)`` — the universal op."""
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(
            level
            for level in (
                self._level[f],
                self._level[g],
                self._level[h],
            )
            if level >= 0
        )

        def cofactor(node: int, positive: bool) -> int:
            if self._level[node] == top:
                return self._high[node] if positive else self._low[node]
            return node

        high = self.ite(
            cofactor(f, True), cofactor(g, True), cofactor(h, True)
        )
        low = self.ite(
            cofactor(f, False), cofactor(g, False), cofactor(h, False)
        )
        result = self._mk(top, low, high)
        self._ite_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # boolean algebra
    # ------------------------------------------------------------------
    def not_(self, f: int) -> int:
        return self.ite(f, ZERO, ONE)

    def and_(self, *fs: int) -> int:
        result = ONE
        for f in fs:
            result = self.ite(result, f, ZERO)
        return result

    def or_(self, *fs: int) -> int:
        result = ZERO
        for f in fs:
            result = self.ite(result, ONE, f)
        return result

    def xor(self, *fs: int) -> int:
        result = ZERO
        for f in fs:
            result = self.ite(result, self.not_(f), f)
        return result

    def nand(self, *fs: int) -> int:
        return self.not_(self.and_(*fs))

    def nor(self, *fs: int) -> int:
        return self.not_(self.or_(*fs))

    def xnor(self, *fs: int) -> int:
        return self.not_(self.xor(*fs))

    def mux(self, sel: int, a: int, b: int) -> int:
        """a when sel == 0 else b (matching NodeType.MUX semantics)."""
        return self.ite(sel, b, a)

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def restrict(self, f: int, level: int, value: int) -> int:
        """Cofactor: fix variable ``level`` to ``value``."""
        if f in (ZERO, ONE) or self._level[f] > level:
            return f
        if self._level[f] == level:
            return self._high[f] if value else self._low[f]
        return self._mk(
            self._level[f],
            self.restrict(self._low[f], level, value),
            self.restrict(self._high[f], level, value),
        )

    def compose(self, f: int, level: int, g: int) -> int:
        """Substitute function ``g`` for variable ``level`` inside ``f``."""
        return self.ite(
            g,
            self.restrict(f, level, 1),
            self.restrict(f, level, 0),
        )

    def support(self, f: int) -> List[int]:
        """Sorted variable levels ``f`` depends on."""
        seen = set()
        levels = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in (ZERO, ONE) or node in seen:
                continue
            seen.add(node)
            levels.add(self._level[node])
            stack.append(self._low[node])
            stack.append(self._high[node])
        return sorted(levels)

    def size(self, f: int) -> int:
        """Number of internal nodes reachable from ``f``."""
        seen = set()
        stack = [f]
        count = 0
        while stack:
            node = stack.pop()
            if node in (ZERO, ONE) or node in seen:
                continue
            seen.add(node)
            count += 1
            stack.append(self._low[node])
            stack.append(self._high[node])
        return count

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def evaluate(self, f: int, assignment: Dict[int, int]) -> int:
        """Evaluate under a level -> 0/1 assignment."""
        node = f
        while node not in (ZERO, ONE):
            level = self._level[node]
            if level not in assignment:
                raise BddError(f"no value for variable level {level}")
            node = (
                self._high[node] if assignment[level] else self._low[node]
            )
        return node

    def sat_count(self, f: int, num_vars: int) -> int:
        """Number of satisfying assignments over ``num_vars`` variables."""
        cache: Dict[int, int] = {}

        def count(node: int) -> Tuple[int, int]:
            # Returns (count over vars below node's level, node level).
            if node == ZERO:
                return 0, num_vars
            if node == ONE:
                return 1, num_vars
            if node in cache:
                return cache[node], self._level[node]
            lo_count, lo_level = count(self._low[node])
            hi_count, hi_level = count(self._high[node])
            level = self._level[node]
            total = lo_count * (1 << (lo_level - level - 1)) + hi_count * (
                1 << (hi_level - level - 1)
            )
            cache[node] = total
            return total, level

        total, top = count(f)
        return total * (1 << top)

    def any_sat(self, f: int) -> Optional[Dict[int, int]]:
        """One satisfying assignment (partial; unmentioned vars are free)."""
        if f == ZERO:
            return None
        assignment: Dict[int, int] = {}
        node = f
        while node != ONE:
            if self._low[node] != ZERO:
                assignment[self._level[node]] = 0
                node = self._low[node]
            else:
                assignment[self._level[node]] = 1
                node = self._high[node]
        return assignment
