"""repro — double-vertex dominators in circuit graphs.

A complete, self-contained reproduction of

    M. Teslenko and E. Dubrova, "An Efficient Algorithm for Finding
    Double-Vertex Dominators in Circuit Graphs", DATE 2005.

The package provides the dominator-chain data structure (all O(n²)
double-vertex dominators of a vertex in O(n) space with O(1) look-up), the
max-flow based chain construction algorithm, the baseline algorithm [11] it
is evaluated against, single-vertex dominator algorithms (Lengauer–Tarjan,
iterative, naive), a circuit-netlist substrate with .bench/BLIF parsers and
parametric benchmark generators, the motivating applications (signal
probability, switching activity, equivalence-checking cut points), and a
benchmark harness that regenerates the paper's Table 1.

Quickstart
----------
>>> from repro import chain_of
>>> from repro.circuits import figure2_circuit
>>> chain = chain_of(figure2_circuit(), "u")
>>> chain.dominates("d", "h")
True
>>> sorted(chain.immediate())
['a', 'b']
"""

from .core import (
    ChainComputer,
    DominatorChain,
    NamedDominatorChain,
    all_pi_chains,
    chain_of,
    common_chain,
    common_pairs,
    count_double_dominators,
    count_double_dominators_baseline,
    count_single_dominators,
    dominator_chain,
    dominator_counts,
    double_idom,
    multi_vertex_dominators,
)
from .check import check_circuit, run_fuzz, shrink_circuit
from .core.region_cache import CacheStats, RegionCache
from .dominators import DominatorTree, circuit_dominator_tree, idom_chain
from .graph import Circuit, CircuitBuilder, IndexedGraph, NodeType
from .incremental import IncrementalEngine

__version__ = "1.0.0"

__all__ = [
    "CacheStats",
    "ChainComputer",
    "Circuit",
    "CircuitBuilder",
    "DominatorChain",
    "DominatorTree",
    "IncrementalEngine",
    "IndexedGraph",
    "RegionCache",
    "NamedDominatorChain",
    "NodeType",
    "all_pi_chains",
    "chain_of",
    "check_circuit",
    "circuit_dominator_tree",
    "common_chain",
    "common_pairs",
    "count_double_dominators",
    "count_double_dominators_baseline",
    "count_single_dominators",
    "dominator_chain",
    "dominator_counts",
    "double_idom",
    "idom_chain",
    "multi_vertex_dominators",
    "run_fuzz",
    "shrink_circuit",
    "__version__",
]
